#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "graph/rng.hpp"

namespace lapclique::graph {

Graph path(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle(int n) {
  if (n < 3) throw std::invalid_argument("cycle: n >= 3 required");
  Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

Graph complete(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  return g;
}

Graph star(int n) {
  if (n < 2) throw std::invalid_argument("star: n >= 2 required");
  Graph g(n);
  for (int i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Graph grid(int rows, int cols) {
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph circulant(int n, std::span<const int> offsets) {
  Graph g(n);
  for (int off : offsets) {
    if (off <= 0 || off >= n) throw std::invalid_argument("circulant: bad offset");
    // off == n - off would duplicate edges; emit each undirected edge once.
    for (int i = 0; i < n; ++i) {
      const int j = (i + off) % n;
      if (2 * off == n && i >= j) continue;
      g.add_edge(i, j);
    }
  }
  return g;
}

Graph barbell(int half) {
  if (half < 2) throw std::invalid_argument("barbell: half >= 2 required");
  Graph g(2 * half);
  for (int i = 0; i < half; ++i) {
    for (int j = i + 1; j < half; ++j) {
      g.add_edge(i, j);
      g.add_edge(half + i, half + j);
    }
  }
  g.add_edge(0, half);
  return g;
}

Graph lollipop(int clique_size, int path_len) {
  if (clique_size < 2) {
    throw std::invalid_argument("lollipop: clique_size >= 2 required");
  }
  if (path_len < 1) throw std::invalid_argument("lollipop: path_len >= 1 required");
  Graph g(clique_size + path_len);
  for (int i = 0; i < clique_size; ++i) {
    for (int j = i + 1; j < clique_size; ++j) g.add_edge(i, j);
  }
  // The tail hangs off vertex 0 of the clique.
  g.add_edge(0, clique_size);
  for (int i = 1; i < path_len; ++i) {
    g.add_edge(clique_size + i - 1, clique_size + i);
  }
  return g;
}

Graph barabasi_albert(int n, int m_per_node, std::uint64_t seed) {
  if (m_per_node < 1) {
    throw std::invalid_argument("barabasi_albert: m_per_node >= 1 required");
  }
  if (n < m_per_node + 2) {
    throw std::invalid_argument("barabasi_albert: n >= m_per_node + 2 required");
  }
  SplitMix64 rng(seed);
  Graph g(n);
  // Complete seed graph on m_per_node + 1 vertices.
  const int seed_n = m_per_node + 1;
  // `chosen` holds one endpoint id per half-edge; sampling an index uniformly
  // from it is sampling a vertex proportionally to its current degree.
  std::vector<int> stubs;
  for (int i = 0; i < seed_n; ++i) {
    for (int j = i + 1; j < seed_n; ++j) {
      g.add_edge(i, j);
      stubs.push_back(i);
      stubs.push_back(j);
    }
  }
  std::vector<char> taken(static_cast<std::size_t>(n), 0);
  for (int v = seed_n; v < n; ++v) {
    std::vector<int> targets;
    targets.reserve(static_cast<std::size_t>(m_per_node));
    while (static_cast<int>(targets.size()) < m_per_node) {
      const int u = stubs[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(stubs.size())))];
      if (taken[static_cast<std::size_t>(u)] != 0) continue;  // distinct targets
      taken[static_cast<std::size_t>(u)] = 1;
      targets.push_back(u);
    }
    for (int u : targets) {
      taken[static_cast<std::size_t>(u)] = 0;
      g.add_edge(u, v);
      stubs.push_back(u);
      stubs.push_back(v);
    }
  }
  return g;
}

Graph random_gnm(int n, int m, std::uint64_t seed) {
  Graph g(n);
  if (n < 2) return g;
  SplitMix64 rng(seed);
  std::set<std::pair<int, int>> used;
  const std::int64_t max_edges =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  const int target = static_cast<int>(std::min<std::int64_t>(m, max_edges));
  while (static_cast<int>(used.size()) < target) {
    int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (used.insert({u, v}).second) g.add_edge(u, v);
  }
  return g;
}

Graph random_connected_gnm(int n, int m, std::uint64_t seed) {
  Graph g(n);
  if (n < 2) return g;
  SplitMix64 rng(seed);
  std::set<std::pair<int, int>> used;
  // Random spanning tree: attach each vertex to a random earlier one.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng.next_below(static_cast<std::uint64_t>(i) + 1)]);
  }
  for (int i = 1; i < n; ++i) {
    int u = order[static_cast<std::size_t>(i)];
    int v = order[rng.next_below(static_cast<std::uint64_t>(i))];
    if (u > v) std::swap(u, v);
    used.insert({u, v});
    g.add_edge(u, v);
  }
  const std::int64_t max_edges = static_cast<std::int64_t>(n) * (n - 1) / 2;
  const int target = static_cast<int>(std::min<std::int64_t>(m, max_edges));
  while (static_cast<int>(used.size()) < target) {
    int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (used.insert({u, v}).second) g.add_edge(u, v);
  }
  return g;
}

Graph random_regular(int n, int d, std::uint64_t seed) {
  if (n * d % 2 != 0) throw std::invalid_argument("random_regular: n*d must be even");
  SplitMix64 rng(seed);
  Graph g(n);
  std::vector<int> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (int v = 0; v < n; ++v) {
    for (int k = 0; k < d; ++k) stubs.push_back(v);
  }
  for (std::size_t i = stubs.size(); i-- > 1;) {
    std::swap(stubs[i], stubs[rng.next_below(i + 1)]);
  }
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] == stubs[i + 1]) {
      // Avoid the self-loop by pairing with the next different stub.
      for (std::size_t j = i + 2; j < stubs.size(); ++j) {
        if (stubs[j] != stubs[i]) {
          std::swap(stubs[i + 1], stubs[j]);
          break;
        }
      }
    }
    if (stubs[i] != stubs[i + 1]) g.add_edge(stubs[i], stubs[i + 1]);
  }
  return g;
}

Graph with_random_weights(const Graph& g, std::int64_t max_weight, std::uint64_t seed) {
  if (max_weight < 1) throw std::invalid_argument("with_random_weights: max_weight >= 1");
  SplitMix64 rng(seed);
  Graph out(g.num_vertices());
  for (const Edge& e : g.edges()) {
    const auto w = static_cast<double>(
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(max_weight))));
    out.add_edge(e.u, e.v, w);
  }
  return out;
}

Graph planted_partition(int blocks, int block_size, double p_in, double p_out,
                        std::uint64_t seed) {
  if (blocks < 1 || block_size < 1) {
    throw std::invalid_argument("planted_partition: bad shape");
  }
  if (!(p_in >= 0 && p_in <= 1 && p_out >= 0 && p_out <= 1)) {
    throw std::invalid_argument("planted_partition: probabilities in [0,1]");
  }
  SplitMix64 rng(seed);
  const int n = blocks * block_size;
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const bool same = u / block_size == v / block_size;
      if (rng.next_double() < (same ? p_in : p_out)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph union_of_random_closed_walks(int n, int walks, int walk_len, std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("closed walks: n >= 3 required");
  if (walk_len < 3) throw std::invalid_argument("closed walks: walk_len >= 3");
  SplitMix64 rng(seed);
  Graph g(n);
  for (int w = 0; w < walks; ++w) {
    const int start = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    int cur = start;
    std::vector<int> walk{start};
    for (int i = 1; i < walk_len; ++i) {
      int nxt = cur;
      while (nxt == cur || (i == walk_len - 1 && nxt == start)) {
        nxt = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      }
      walk.push_back(nxt);
      cur = nxt;
    }
    walk.push_back(start);  // close the walk
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      g.add_edge(walk[i], walk[i + 1]);
    }
  }
  return g;
}

Graph doubled(const Graph& g) {
  Graph out(g.num_vertices());
  for (const Edge& e : g.edges()) {
    out.add_edge(e.u, e.v, e.w);
    out.add_edge(e.u, e.v, e.w);
  }
  return out;
}

Digraph random_flow_network(int n, int m, std::int64_t max_cap, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("random_flow_network: n >= 2");
  SplitMix64 rng(seed);
  Digraph g(n);
  std::set<std::pair<int, int>> used;
  // Random s-t chain so max flow is positive.
  std::vector<int> mid;
  for (int v = 1; v + 1 < n; ++v) mid.push_back(v);
  for (std::size_t i = mid.size(); i-- > 1;) {
    std::swap(mid[i], mid[rng.next_below(i + 1)]);
  }
  const int chain_len = std::min<int>(static_cast<int>(mid.size()), std::max(1, n / 3));
  int prev = 0;
  for (int i = 0; i < chain_len; ++i) {
    const int v = mid[static_cast<std::size_t>(i)];
    used.insert({prev, v});
    g.add_arc(prev, v, 1 + static_cast<std::int64_t>(rng.next_below(
                               static_cast<std::uint64_t>(max_cap))));
    prev = v;
  }
  used.insert({prev, n - 1});
  g.add_arc(prev, n - 1,
            1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(max_cap))));
  while (g.num_arcs() < m) {
    int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v || v == 0 || u == n - 1) continue;  // no arcs into s / out of t
    if (!used.insert({u, v}).second) continue;
    g.add_arc(u, v, 1 + static_cast<std::int64_t>(rng.next_below(
                            static_cast<std::uint64_t>(max_cap))));
  }
  return g;
}

Digraph layered_flow_network(int layers, int width, std::int64_t max_cap,
                             std::uint64_t seed) {
  if (layers < 1 || width < 1) throw std::invalid_argument("layered: bad shape");
  SplitMix64 rng(seed);
  const int n = 2 + layers * width;
  Digraph g(n);
  auto id = [width](int layer, int k) { return 1 + layer * width + k; };
  for (int k = 0; k < width; ++k) {
    g.add_arc(0, id(0, k),
              1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(max_cap))));
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        if (a == b || rng.next_below(2) == 0) {
          g.add_arc(id(l, a), id(l + 1, b),
                    1 + static_cast<std::int64_t>(
                            rng.next_below(static_cast<std::uint64_t>(max_cap))));
        }
      }
    }
  }
  for (int k = 0; k < width; ++k) {
    g.add_arc(id(layers - 1, k), n - 1,
              1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(max_cap))));
  }
  return g;
}

Digraph random_unit_cost_digraph(int n, int m, std::int64_t max_cost,
                                 std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("random_unit_cost_digraph: n >= 2");
  SplitMix64 rng(seed);
  Digraph g(n);
  std::set<std::pair<int, int>> used;
  while (g.num_arcs() < m) {
    int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (!used.insert({u, v}).second) continue;
    g.add_arc(u, v, 1,
              1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(max_cost))));
  }
  return g;
}

std::vector<std::int64_t> feasible_unit_demands(const Digraph& g, int pairs,
                                                std::uint64_t seed) {
  SplitMix64 rng(seed);
  const int n = g.num_vertices();
  std::vector<std::int64_t> sigma(static_cast<std::size_t>(n), 0);
  std::vector<char> arc_used(static_cast<std::size_t>(g.num_arcs()), 0);
  int made = 0;
  for (int attempt = 0; attempt < pairs * 20 && made < pairs; ++attempt) {
    // Random walk along unused arcs; the walk's endpoints become a demand pair.
    int start = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    int cur = start;
    std::vector<int> walk_arcs;
    for (int step = 0; step < n; ++step) {
      const auto outs = g.out_arcs(cur);
      std::vector<int> candidates;
      for (int a : outs) {
        if (arc_used[static_cast<std::size_t>(a)] == 0) candidates.push_back(a);
      }
      if (candidates.empty()) break;
      const int a = candidates[rng.next_below(candidates.size())];
      walk_arcs.push_back(a);
      cur = g.arc(a).to;
      if (rng.next_below(3) == 0) break;  // vary path lengths
    }
    if (walk_arcs.empty() || cur == start) continue;
    for (int a : walk_arcs) arc_used[static_cast<std::size_t>(a)] = 1;
    // Demand convention (1'): excess(v) = inflow - outflow = sigma(v).
    sigma[static_cast<std::size_t>(start)] -= 1;
    sigma[static_cast<std::size_t>(cur)] += 1;
    ++made;
  }
  return sigma;
}

}  // namespace lapclique::graph

#include "graph/graph.hpp"

#include <algorithm>

namespace lapclique::graph {

Graph::Graph(int n) : n_(n), adj_(static_cast<std::size_t>(std::max(n, 0))) {
  if (n < 0) throw std::invalid_argument("Graph: n must be non-negative");
}

void Graph::check_vertex(int v) const {
  if (v < 0 || v >= n_) throw std::out_of_range("Graph: vertex out of range");
}

int Graph::add_edge(int u, int v, double w) {
  check_vertex(u);
  check_vertex(v);
  if (u == v) throw std::invalid_argument("Graph: self-loops not allowed");
  if (!(w > 0)) throw std::invalid_argument("Graph: weight must be positive");
  const int e = static_cast<int>(edges_.size());
  edges_.push_back(Edge{u, v, w});
  adj_[static_cast<std::size_t>(u)].push_back(Incidence{e, v});
  adj_[static_cast<std::size_t>(v)].push_back(Incidence{e, u});
  return e;
}

std::span<const Incidence> Graph::incident(int v) const {
  check_vertex(v);
  return adj_[static_cast<std::size_t>(v)];
}

double Graph::weighted_degree(int v) const {
  double s = 0;
  for (const Incidence& inc : incident(v)) s += edges_[static_cast<std::size_t>(inc.edge)].w;
  return s;
}

double Graph::total_weight() const {
  double s = 0;
  for (const Edge& e : edges_) s += e.w;
  return s;
}

void Graph::scale_weights(double s) {
  if (!(s > 0)) throw std::invalid_argument("Graph: scale must be positive");
  for (Edge& e : edges_) e.w *= s;
}

Graph Graph::induced_subgraph(std::span<const int> vertices) const {
  std::vector<int> old_to_new(static_cast<std::size_t>(n_), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    check_vertex(vertices[i]);
    old_to_new[static_cast<std::size_t>(vertices[i])] = static_cast<int>(i);
  }
  Graph sub(static_cast<int>(vertices.size()));
  for (const Edge& e : edges_) {
    const int nu = old_to_new[static_cast<std::size_t>(e.u)];
    const int nv = old_to_new[static_cast<std::size_t>(e.v)];
    if (nu >= 0 && nv >= 0) sub.add_edge(nu, nv, e.w);
  }
  return sub;
}

}  // namespace lapclique::graph

#include "graph/laplacian.hpp"

#include <cmath>

namespace lapclique::graph {

linalg::CsrMatrix laplacian(const Graph& g) {
  std::vector<linalg::Triplet> t;
  t.reserve(static_cast<std::size_t>(g.num_edges()) * 4);
  for (const Edge& e : g.edges()) {
    t.push_back({e.u, e.u, e.w});
    t.push_back({e.v, e.v, e.w});
    t.push_back({e.u, e.v, -e.w});
    t.push_back({e.v, e.u, -e.w});
  }
  return linalg::CsrMatrix::from_triplets(g.num_vertices(), t);
}

linalg::CsrMatrix normalized_laplacian(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<double> dinv_sqrt(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    const double d = g.weighted_degree(v);
    if (d > 0) dinv_sqrt[static_cast<std::size_t>(v)] = 1.0 / std::sqrt(d);
  }
  std::vector<linalg::Triplet> t;
  t.reserve(static_cast<std::size_t>(g.num_edges()) * 4);
  for (const Edge& e : g.edges()) {
    const double su = dinv_sqrt[static_cast<std::size_t>(e.u)];
    const double sv = dinv_sqrt[static_cast<std::size_t>(e.v)];
    t.push_back({e.u, e.u, e.w * su * su});
    t.push_back({e.v, e.v, e.w * sv * sv});
    t.push_back({e.u, e.v, -e.w * su * sv});
    t.push_back({e.v, e.u, -e.w * su * sv});
  }
  return linalg::CsrMatrix::from_triplets(n, t);
}

double laplacian_norm(const linalg::CsrMatrix& l, std::span<const double> x) {
  const double q = l.quadratic_form(x);
  return q > 0 ? std::sqrt(q) : 0.0;
}

}  // namespace lapclique::graph

// Deterministic checkpoint/restore for long runs.
//
// The IPM flow algorithms run Θ(√m · polylog) communication batches — the
// long-lived jobs a SLURM-style preempt/requeue world kills mid-flight.  The
// fault layer (src/fault) recovers message-level faults *inside* a live run;
// this subsystem survives the process dying: a `CheckpointWriter` attached
// via `Runtime{checkpoint_path, checkpoint_every}` serializes, at batch
// boundaries, the complete resumable state of a run —
//
//   * the algorithm payload (flow iterate, duals, congestion vectors —
//     opaque bytes produced by the IPM's own encoder),
//   * the Network accounting (rounds, words, phase, phase ledger, op log),
//   * the attached RoundLedger's full span tree (so the trace JSON of a
//     resumed run is byte-equal to an uninterrupted one),
//   * the attached FaultPlan's counters (so injected faults replay
//     identically after resume),
//
// under a header carrying a graph hash, routing mode, fault-config
// signature, and schema version.  The container format is versioned,
// checksummed (FNV-1a 64), and committed atomically (write `.tmp`, fsync,
// rename) so a crash mid-snapshot never corrupts the last good checkpoint.
//
// Restore is all-or-nothing (the strong guarantee, mirroring the PR 4 io
// hardening): truncated files, checksum mismatches, schema skew, and
// header/run mismatches each throw a located `CheckpointError` *before* any
// run state is touched.
//
// Determinism contract (pinned by tests/test_checkpoint.cpp): a run
// preempted at ANY batch and resumed from its last checkpoint produces
// byte-identical outputs, round/word ledgers, and trace JSON to an
// uninterrupted run, at any thread count and in all three routing modes.
//
// Format (little-endian throughout):
//
//   offset 0   magic   "LAPCKPT1"                      (8 bytes)
//   offset 8   schema  u32 (kSchemaVersion)
//   offset 12  body    tagged fields (see checkpoint.cpp)
//   tail       u64 FNV-1a checksum of everything before it
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cliquesim/network.hpp"
#include "fault/fault_plan.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "io/dimacs.hpp"
#include "obs/round_ledger.hpp"

namespace lapclique::ckpt {

inline constexpr char kMagic[8] = {'L', 'A', 'P', 'C', 'K', 'P', 'T', '1'};
inline constexpr std::uint32_t kSchemaVersion = 1;

/// FNV-1a 64-bit, the container checksum and the graph-hash primitive.
/// Exposed so tests can craft adversarial files and callers can hash inputs.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t len,
                                    std::uint64_t h = 0xcbf29ce484222325ULL);

/// Stable content hash of the run's input graph, stored in the header so a
/// checkpoint cannot silently restore onto a different instance.
[[nodiscard]] std::uint64_t graph_hash(const graph::Digraph& g);
[[nodiscard]] std::uint64_t graph_hash(const graph::Graph& g);

/// Malformed or incompatible checkpoint file.  Derives from io::ParseError
/// so checkpoint diagnostics read like every other input diagnostic in the
/// repo: "<path> @ byte <offset>: <what>".
class CheckpointError : public io::ParseError {
 public:
  CheckpointError(const std::string& path, long long offset,
                  const std::string& what)
      : io::ParseError(path, offset, what) {}
};

/// Append-only little-endian encoder for checkpoint bodies.  The IPMs use it
/// for their opaque state payloads; the container uses it for the header and
/// run snapshots.
class Encoder {
 public:
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);  ///< exact bit pattern, so doubles round-trip bitwise
  void str(const std::string& s);
  void f64_vec(const std::vector<double>& v);
  void i64_vec(const std::vector<std::int64_t>& v);

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder; every read past the end throws a located
/// CheckpointError (never returns garbage).
class Decoder {
 public:
  Decoder(std::string source, const std::string& bytes, std::size_t base = 0)
      : source_(std::move(source)), buf_(bytes), base_(base) {}

  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  std::vector<double> f64_vec();
  std::vector<std::int64_t> i64_vec();

  /// Absolute file offset the decoder has reached (base + position).
  [[nodiscard]] long long offset() const {
    return static_cast<long long>(base_ + pos_);
  }
  [[nodiscard]] bool done() const { return pos_ == buf_.size(); }
  [[noreturn]] void fail(const std::string& what) const;

 private:
  void need(std::size_t n, const char* what) const;

  std::string source_;
  const std::string& buf_;
  std::size_t base_ = 0;
  std::size_t pos_ = 0;
};

/// One decoded checkpoint: the run-container snapshots plus the algorithm's
/// opaque payload.  `source` and `field_offsets` are bookkeeping filled by
/// load_checkpoint (not serialized) so compatibility errors point into the
/// file.
struct Checkpoint {
  std::uint32_t schema = kSchemaVersion;
  std::string algo;             ///< "maxflow" | "mincost"
  std::uint64_t graph_hash = 0;
  std::string routing_mode;     ///< clique::to_string spelling
  std::int64_t threads = 1;     ///< informational: writer's thread count
  std::int64_t batch = 0;       ///< boundary index this snapshot was taken at

  bool has_fault_plan = false;
  std::string fault_spec;       ///< full spec string (includes preempt=)
  std::uint64_t fault_seed = 0;
  fault::FaultPlanSnapshot fault_state;

  clique::NetworkSnapshot net;

  bool has_ledger = false;
  obs::LedgerSnapshot ledger;

  std::string state;  ///< algorithm payload, opaque to the container

  std::string source;  ///< path this was loaded from ("" if in-memory)
  std::map<std::string, long long> field_offsets;  ///< header field -> byte
};

/// Serialize to the container format (magic + schema + body + checksum).
[[nodiscard]] std::string encode_checkpoint(const Checkpoint& ck);

/// Parse and validate a container produced by encode_checkpoint.  Throws
/// CheckpointError on truncation, bad magic, schema skew, or checksum
/// mismatch — always before returning anything (strong guarantee).
[[nodiscard]] Checkpoint decode_checkpoint(const std::string& source,
                                           const std::string& bytes);

/// Atomic write: encode, write `path.tmp`, fsync, rename over `path`.
void save_checkpoint(const std::string& path, const Checkpoint& ck);

/// Read + decode_checkpoint; missing/unreadable files throw CheckpointError.
[[nodiscard]] Checkpoint load_checkpoint(const std::string& path);

/// The fault configuration a checkpoint must agree on with the run resuming
/// from it: spec (with the preempt clause stripped — preemption schedules
/// the kill, it never perturbs accounting) plus seed when the stripped spec
/// is non-empty.  "" means "no accounting-relevant faults".
[[nodiscard]] std::string fault_signature(const fault::FaultPlan* plan);
[[nodiscard]] std::string fault_signature(const Checkpoint& ck);

/// Header-vs-run compatibility: algorithm, graph hash (skipped for
/// warm starts onto an edited graph when `check_graph_hash` is false),
/// routing mode, and fault signature must all match, else a located
/// CheckpointError.  Thread count is informational (outputs are
/// thread-invariant by the determinism contract) and not checked.
void verify_compatible(const Checkpoint& ck, const std::string& algo,
                       std::uint64_t graph_hash, const clique::Network& net,
                       bool check_graph_hash = true);

/// Restore the run-container state (network accounting, attached ledger,
/// attached fault plan) from a verified checkpoint.  Must run before the
/// resumed code path charges anything.  Returns the algorithm payload.
/// Throws CheckpointError if a tracer is attached but the checkpoint carries
/// no ledger (the resumed trace could not be byte-faithful).
const std::string& restore_run_state(const Checkpoint& ck,
                                     clique::Network& net);

/// Writes checkpoints for one run.  `due(batch)` is true every `every`-th
/// boundary (boundary 0 included, so even a run preempted in its first batch
/// resumes instead of restarting).
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string path, std::int64_t every = 1,
                            std::int64_t threads = 1);

  [[nodiscard]] bool due(std::int64_t batch) const {
    return every_ > 0 && batch % every_ == 0;
  }

  /// Snapshot the network (+ attached ledger and fault plan) and the given
  /// algorithm payload, and atomically commit to `path()`.
  void commit(const clique::Network& net, const std::string& algo,
              std::uint64_t graph_hash, std::int64_t batch, std::string state);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::int64_t every() const { return every_; }
  [[nodiscard]] std::int64_t threads() const { return threads_; }
  [[nodiscard]] std::int64_t written() const { return written_; }

 private:
  std::string path_;
  std::int64_t every_ = 1;
  std::int64_t threads_ = 1;
  std::int64_t written_ = 0;
};

/// How a run participates in checkpointing, threaded through the IPM option
/// structs.  All pointers are non-owning and may be null.
struct CheckpointHooks {
  CheckpointWriter* writer = nullptr;     ///< write at due boundaries
  const Checkpoint* resume = nullptr;     ///< continue bit-identically from here
  const Checkpoint* warm_start = nullptr; ///< seed the iterate from here (graph may differ)

  [[nodiscard]] bool any() const {
    return writer != nullptr || resume != nullptr || warm_start != nullptr;
  }
};

/// Throw fault::PreemptError if the attached plan schedules a process kill
/// at this boundary.  Called AFTER the boundary's checkpoint write, so a
/// preempted run always leaves a resumable snapshot of the batch it died at.
void maybe_preempt(const fault::FaultPlan* plan, std::int64_t batch);

// --- cooperative cancellation at batch boundaries --------------------------
//
// Checkpoint-batch boundaries are the IPMs' natural preemption points; the
// serving frontend (src/serve) reuses them as *deadline-check* points.  A
// CancellationScope installs a per-thread check for the duration of one
// request; the IPM loops poll it at every boundary — even when no checkpoint
// hooks are attached — so an expired deadline aborts a long run at a clean
// point instead of hanging the connection.  The check may throw any
// exception (the serve layer throws its DeadlineError); it must not touch
// the network, so an aborted run's partial accounting stays readable.

/// Per-boundary check; `batch` is the boundary index about to run.
using CancellationFn = std::function<void(std::int64_t batch)>;

/// RAII: installs `fn` as the calling thread's boundary check, restoring
/// the previous one (usually none) on destruction.  An empty fn is allowed
/// and makes poll_cancellation a no-op for the scope.
class CancellationScope {
 public:
  explicit CancellationScope(CancellationFn fn);
  ~CancellationScope();
  CancellationScope(const CancellationScope&) = delete;
  CancellationScope& operator=(const CancellationScope&) = delete;

 private:
  CancellationFn prev_;
};

/// Invoke the calling thread's installed check, if any.  Cheap when none is
/// installed (one thread-local load), so the IPMs call it unconditionally.
void poll_cancellation(std::int64_t batch);

/// The per-boundary call the IPMs make: write a checkpoint when one is due
/// (the payload thunk runs only then), then honor a scheduled preemption.
void boundary(const CheckpointHooks& hooks, clique::Network& net,
              std::int64_t batch, const char* algo, std::uint64_t graph_hash,
              const std::function<std::string()>& encode_state);

}  // namespace lapclique::ckpt

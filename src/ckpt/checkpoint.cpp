#include "ckpt/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define LAPCLIQUE_CKPT_POSIX 1
#else
#define LAPCLIQUE_CKPT_POSIX 0
#endif

namespace lapclique::ckpt {

std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

std::uint64_t hash_i64(std::uint64_t h, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(u >> (8 * i));
  return fnv1a64(bytes, 8, h);
}

std::uint64_t hash_f64(std::uint64_t h, double v) {
  return hash_i64(h, static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(v)));
}

}  // namespace

std::uint64_t graph_hash(const graph::Digraph& g) {
  std::uint64_t h = fnv1a64("digraph", 7);
  h = hash_i64(h, g.num_vertices());
  h = hash_i64(h, g.num_arcs());
  for (const graph::Arc& a : g.arcs()) {
    h = hash_i64(h, a.from);
    h = hash_i64(h, a.to);
    h = hash_i64(h, a.cap);
    h = hash_i64(h, a.cost);
  }
  return h;
}

std::uint64_t graph_hash(const graph::Graph& g) {
  std::uint64_t h = fnv1a64("graph", 5);
  h = hash_i64(h, g.num_vertices());
  h = hash_i64(h, g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    h = hash_i64(h, e.u);
    h = hash_i64(h, e.v);
    h = hash_f64(h, e.w);
  }
  return h;
}

// --- Encoder / Decoder -----------------------------------------------------

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
}

void Encoder::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Encoder::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::str(const std::string& s) {
  u64(s.size());
  buf_.append(s);
}

void Encoder::f64_vec(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void Encoder::i64_vec(const std::vector<std::int64_t>& v) {
  u64(v.size());
  for (std::int64_t x : v) i64(x);
}

void Decoder::need(std::size_t n, const char* what) const {
  if (pos_ + n > buf_.size()) {
    throw CheckpointError(source_, offset(),
                          std::string("truncated checkpoint: expected ") +
                              what + " (" + std::to_string(n) + " bytes, " +
                              std::to_string(buf_.size() - pos_) +
                              " remain)");
  }
}

std::uint32_t Decoder::u32() {
  need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::u64() {
  need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t Decoder::i64() { return static_cast<std::int64_t>(u64()); }

double Decoder::f64() { return std::bit_cast<double>(u64()); }

std::string Decoder::str() {
  const std::uint64_t len = u64();
  need(len, "string bytes");
  std::string s = buf_.substr(pos_, len);
  pos_ += len;
  return s;
}

std::vector<double> Decoder::f64_vec() {
  const std::uint64_t len = u64();
  need(len * 8, "f64 vector");
  std::vector<double> v;
  v.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) v.push_back(f64());
  return v;
}

std::vector<std::int64_t> Decoder::i64_vec() {
  const std::uint64_t len = u64();
  need(len * 8, "i64 vector");
  std::vector<std::int64_t> v;
  v.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) v.push_back(i64());
  return v;
}

void Decoder::fail(const std::string& what) const {
  throw CheckpointError(source_, offset(), what);
}

// --- snapshot codecs -------------------------------------------------------

namespace {

void encode_totals(Encoder& e, const obs::OpTotals& t) {
  e.i64(t.rounds);
  e.i64(t.words);
  e.i64(t.ops);
  e.i64(t.max_node_load);
}

obs::OpTotals decode_totals(Decoder& d) {
  obs::OpTotals t;
  t.rounds = d.i64();
  t.words = d.i64();
  t.ops = d.i64();
  t.max_node_load = d.i64();
  return t;
}

void encode_network(Encoder& e, const clique::NetworkSnapshot& s) {
  e.i64(s.rounds);
  e.i64(s.words);
  e.str(s.phase);
  e.u64(s.ledger.rounds_by_phase.size());
  for (const auto& [phase, rounds] : s.ledger.rounds_by_phase) {
    e.str(phase);
    e.i64(rounds);
  }
  e.u64(s.op_log.size());
  for (const clique::OpRecord& op : s.op_log) {
    e.str(op.phase);
    e.i64(op.rounds);
    e.i64(op.words);
    e.i64(op.max_node_load);
  }
}

clique::NetworkSnapshot decode_network(Decoder& d) {
  clique::NetworkSnapshot s;
  s.rounds = d.i64();
  s.words = d.i64();
  s.phase = d.str();
  const std::uint64_t phases = d.u64();
  for (std::uint64_t i = 0; i < phases; ++i) {
    std::string phase = d.str();
    s.ledger.rounds_by_phase[std::move(phase)] = d.i64();
  }
  const std::uint64_t ops = d.u64();
  s.op_log.reserve(ops);
  for (std::uint64_t i = 0; i < ops; ++i) {
    clique::OpRecord op;
    op.phase = d.str();
    op.rounds = d.i64();
    op.words = d.i64();
    op.max_node_load = d.i64();
    s.op_log.push_back(std::move(op));
  }
  return s;
}

void encode_ledger(Encoder& e, const obs::LedgerSnapshot& s) {
  e.u64(s.nodes.size());
  for (const obs::SpanNode& n : s.nodes) {
    e.str(n.name);
    e.i64(n.parent);
    e.u32(n.is_phase ? 1 : 0);
    e.i64(n.visits);
    encode_totals(e, n.self);
    e.u64(n.children.size());
    for (int c : n.children) e.i64(c);
  }
  e.u64(s.stack.size());
  for (int id : s.stack) e.i64(id);
  encode_totals(e, s.total);
  e.u64(s.primitives.size());
  for (const auto& [name, totals] : s.primitives) {
    e.str(name);
    encode_totals(e, totals);
  }
  e.u64(s.counters.size());
  for (const auto& [name, value] : s.counters) {
    e.str(name);
    e.i64(value);
  }
  e.i64_vec(s.sent);
  e.i64_vec(s.recv);
}

obs::LedgerSnapshot decode_ledger(Decoder& d) {
  obs::LedgerSnapshot s;
  const std::uint64_t nodes = d.u64();
  s.nodes.reserve(nodes);
  for (std::uint64_t i = 0; i < nodes; ++i) {
    obs::SpanNode n;
    n.name = d.str();
    n.parent = static_cast<int>(d.i64());
    n.is_phase = d.u32() != 0;
    n.visits = d.i64();
    n.self = decode_totals(d);
    const std::uint64_t kids = d.u64();
    n.children.reserve(kids);
    for (std::uint64_t k = 0; k < kids; ++k) {
      n.children.push_back(static_cast<int>(d.i64()));
    }
    s.nodes.push_back(std::move(n));
  }
  const std::uint64_t depth = d.u64();
  s.stack.reserve(depth);
  for (std::uint64_t i = 0; i < depth; ++i) {
    s.stack.push_back(static_cast<int>(d.i64()));
  }
  s.total = decode_totals(d);
  const std::uint64_t prims = d.u64();
  for (std::uint64_t i = 0; i < prims; ++i) {
    std::string name = d.str();
    s.primitives[std::move(name)] = decode_totals(d);
  }
  const std::uint64_t counters = d.u64();
  for (std::uint64_t i = 0; i < counters; ++i) {
    std::string name = d.str();
    s.counters[std::move(name)] = d.i64();
  }
  s.sent = d.i64_vec();
  s.recv = d.i64_vec();
  return s;
}

void encode_fault_state(Encoder& e, const fault::FaultPlanSnapshot& s) {
  e.u64(s.draws);
  e.i64(s.op_counter);
  const fault::RecoveryStats& st = s.stats;
  e.i64(st.words_dropped);
  e.i64(st.words_corrupted);
  e.i64(st.words_duplicated);
  e.i64(st.crash_events);
  e.i64(st.crash_affected_words);
  e.i64(st.faulty_batches);
  e.i64(st.retransmit_attempts);
  e.i64(st.retransmitted_words);
  e.i64(st.armored_batches);
  e.i64(st.armored_words);
  e.i64(st.recovery_rounds);
  e.i64(st.recovery_words);
  e.i64(st.ipm_fallbacks);
  e.i64(st.solver_fallbacks);
}

fault::FaultPlanSnapshot decode_fault_state(Decoder& d) {
  fault::FaultPlanSnapshot s;
  s.draws = d.u64();
  s.op_counter = d.i64();
  fault::RecoveryStats& st = s.stats;
  st.words_dropped = d.i64();
  st.words_corrupted = d.i64();
  st.words_duplicated = d.i64();
  st.crash_events = d.i64();
  st.crash_affected_words = d.i64();
  st.faulty_batches = d.i64();
  st.retransmit_attempts = d.i64();
  st.retransmitted_words = d.i64();
  st.armored_batches = d.i64();
  st.armored_words = d.i64();
  st.recovery_rounds = d.i64();
  st.recovery_words = d.i64();
  st.ipm_fallbacks = d.i64();
  st.solver_fallbacks = d.i64();
  return s;
}

std::string where(const Checkpoint& ck) {
  return ck.source.empty() ? std::string("<checkpoint>") : ck.source;
}

long long offset_of(const Checkpoint& ck, const std::string& field) {
  const auto it = ck.field_offsets.find(field);
  // 12 = first body byte; the best locator available for in-memory
  // checkpoints that never went through decode_checkpoint.
  return it == ck.field_offsets.end() ? 12 : it->second;
}

}  // namespace

// --- container -------------------------------------------------------------

std::string encode_checkpoint(const Checkpoint& ck) {
  Encoder e;
  e.str(ck.algo);
  e.u64(ck.graph_hash);
  e.str(ck.routing_mode);
  e.i64(ck.threads);
  e.i64(ck.batch);
  e.u32(ck.has_fault_plan ? 1 : 0);
  if (ck.has_fault_plan) {
    e.str(ck.fault_spec);
    e.u64(ck.fault_seed);
    encode_fault_state(e, ck.fault_state);
  }
  encode_network(e, ck.net);
  e.u32(ck.has_ledger ? 1 : 0);
  if (ck.has_ledger) encode_ledger(e, ck.ledger);
  e.str(ck.state);

  std::string out(kMagic, sizeof(kMagic));
  {
    Encoder head;
    head.u32(kSchemaVersion);
    out += head.take();
  }
  out += e.take();
  const std::uint64_t sum = fnv1a64(out.data(), out.size());
  Encoder tail;
  tail.u64(sum);
  out += tail.take();
  return out;
}

Checkpoint decode_checkpoint(const std::string& source,
                             const std::string& bytes) {
  constexpr std::size_t kHeader = sizeof(kMagic) + 4;  // magic + schema
  constexpr std::size_t kTail = 8;                     // checksum
  if (bytes.size() < kHeader + kTail) {
    throw CheckpointError(source, static_cast<long long>(bytes.size()),
                          "truncated checkpoint: " +
                              std::to_string(bytes.size()) +
                              " bytes is smaller than the fixed container "
                              "framing (magic + schema + checksum)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError(source, 0,
                          "bad magic: not a lapclique checkpoint file");
  }
  Checkpoint ck;
  ck.source = source;
  {
    const std::string schema_bytes = bytes.substr(sizeof(kMagic), 4);
    Decoder d(source, schema_bytes, sizeof(kMagic));
    ck.schema = d.u32();
  }
  if (ck.schema != kSchemaVersion) {
    throw CheckpointError(
        source, static_cast<long long>(sizeof(kMagic)),
        "schema version skew: file has v" + std::to_string(ck.schema) +
            ", this build reads v" + std::to_string(kSchemaVersion));
  }
  const std::uint64_t computed =
      fnv1a64(bytes.data(), bytes.size() - kTail);
  std::uint64_t stored = 0;
  {
    const std::string tail = bytes.substr(bytes.size() - kTail);
    Decoder d(source, tail, static_cast<std::size_t>(bytes.size() - kTail));
    stored = d.u64();
  }
  if (stored != computed) {
    throw CheckpointError(source,
                          static_cast<long long>(bytes.size() - kTail),
                          "checksum mismatch: file is corrupt (stored " +
                              std::to_string(stored) + ", computed " +
                              std::to_string(computed) + ")");
  }

  const std::string body = bytes.substr(kHeader, bytes.size() - kHeader - kTail);
  Decoder d(source, body, kHeader);
  ck.field_offsets["algo"] = d.offset();
  ck.algo = d.str();
  ck.field_offsets["graph_hash"] = d.offset();
  ck.graph_hash = d.u64();
  ck.field_offsets["routing_mode"] = d.offset();
  ck.routing_mode = d.str();
  ck.field_offsets["threads"] = d.offset();
  ck.threads = d.i64();
  ck.field_offsets["batch"] = d.offset();
  ck.batch = d.i64();
  ck.field_offsets["fault"] = d.offset();
  ck.has_fault_plan = d.u32() != 0;
  if (ck.has_fault_plan) {
    ck.fault_spec = d.str();
    ck.fault_seed = d.u64();
    ck.fault_state = decode_fault_state(d);
  }
  ck.net = decode_network(d);
  ck.field_offsets["ledger"] = d.offset();
  ck.has_ledger = d.u32() != 0;
  if (ck.has_ledger) ck.ledger = decode_ledger(d);
  ck.state = d.str();
  if (!d.done()) d.fail("trailing junk after checkpoint body");
  return ck;
}

void save_checkpoint(const std::string& path, const Checkpoint& ck) {
  const std::string blob = encode_checkpoint(ck);
  const std::string tmp = path + ".tmp";
#if LAPCLIQUE_CKPT_POSIX
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw CheckpointError(tmp, 0, "cannot open checkpoint temp file");
  }
  std::size_t off = 0;
  while (off < blob.size()) {
    const ::ssize_t wrote = ::write(fd, blob.data() + off, blob.size() - off);
    if (wrote < 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      throw CheckpointError(tmp, static_cast<long long>(off),
                            "short write while checkpointing");
    }
    off += static_cast<std::size_t>(wrote);
  }
  // fsync before rename: the rename must never make a not-yet-durable file
  // the "last good checkpoint".
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError(tmp, 0, "fsync failed while checkpointing");
  }
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) {
      throw CheckpointError(tmp, 0, "write failed while checkpointing");
    }
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError(path, 0, "atomic rename of checkpoint failed");
  }
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError(path, 0, "cannot open checkpoint file");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return decode_checkpoint(path, bytes);
}

// --- compatibility ---------------------------------------------------------

std::string fault_signature(const fault::FaultPlan* plan) {
  if (plan == nullptr) return "";
  fault::FaultSpec spec = plan->spec();
  spec.preempt_at = fault::FaultSpec::kNever;
  // sock-* faults act on the serving frontend's real sockets, never on the
  // simulated run, so like preempt= they are accounting-neutral.
  spec.sock_drop = spec.sock_partial = spec.sock_slow = 0.0;
  const std::string text = fault::to_string(spec);
  if (text.empty()) return "";
  return text + "#" + std::to_string(plan->seed());
}

std::string fault_signature(const Checkpoint& ck) {
  if (!ck.has_fault_plan || ck.fault_spec.empty()) return "";
  fault::FaultSpec spec = fault::parse_fault_spec(ck.fault_spec);
  spec.preempt_at = fault::FaultSpec::kNever;
  spec.sock_drop = spec.sock_partial = spec.sock_slow = 0.0;
  const std::string text = fault::to_string(spec);
  if (text.empty()) return "";
  return text + "#" + std::to_string(ck.fault_seed);
}

void verify_compatible(const Checkpoint& ck, const std::string& algo,
                       std::uint64_t graph_hash, const clique::Network& net,
                       bool check_graph_hash) {
  if (ck.algo != algo) {
    throw CheckpointError(where(ck), offset_of(ck, "algo"),
                          "checkpoint is for algorithm '" + ck.algo +
                              "' but this run is '" + algo + "'");
  }
  if (check_graph_hash && ck.graph_hash != graph_hash) {
    throw CheckpointError(
        where(ck), offset_of(ck, "graph_hash"),
        "graph hash mismatch: checkpoint " + std::to_string(ck.graph_hash) +
            ", current input " + std::to_string(graph_hash) +
            " — resuming onto a different instance would silently produce "
            "garbage");
  }
  const std::string mode = clique::to_string(net.routing_mode());
  if (ck.routing_mode != mode) {
    throw CheckpointError(where(ck), offset_of(ck, "routing_mode"),
                          "routing mode mismatch: checkpoint was written "
                          "under '" +
                              ck.routing_mode + "', this run charges '" +
                              mode + "'");
  }
  const std::string ck_sig = fault_signature(ck);
  const std::string run_sig = fault_signature(net.fault_plan());
  if (ck_sig != run_sig) {
    throw CheckpointError(
        where(ck), offset_of(ck, "fault"),
        "fault configuration mismatch: checkpoint was written under '" +
            (ck_sig.empty() ? std::string("<none>") : ck_sig) +
            "', this run injects '" +
            (run_sig.empty() ? std::string("<none>") : run_sig) +
            "' (the injected fault stream is part of the deterministic "
            "accounting)");
  }
}

const std::string& restore_run_state(const Checkpoint& ck,
                                     clique::Network& net) {
  obs::RoundLedger* tracer = net.tracer();
  if (tracer != nullptr && !ck.has_ledger) {
    throw CheckpointError(
        where(ck), offset_of(ck, "ledger"),
        "a trace ledger is attached to the resumed run but the checkpoint "
        "carries none — the resumed trace could not be byte-faithful "
        "(resume without a tracer, or re-checkpoint with one attached)");
  }
  // Order matters: nothing below throws, so a failed resume (above) leaves
  // the run container untouched (strong guarantee).
  if (tracer != nullptr) tracer->restore(ck.ledger);
  net.restore(ck.net);
  if (net.fault_plan() != nullptr && ck.has_fault_plan) {
    net.fault_plan()->restore(ck.fault_state);
  }
  return ck.state;
}

// --- writer ----------------------------------------------------------------

CheckpointWriter::CheckpointWriter(std::string path, std::int64_t every,
                                   std::int64_t threads)
    : path_(std::move(path)), every_(every), threads_(threads) {
  if (path_.empty()) {
    throw std::invalid_argument("CheckpointWriter: empty path");
  }
  if (every_ < 1) {
    throw std::invalid_argument("CheckpointWriter: checkpoint_every must be >= 1");
  }
}

void CheckpointWriter::commit(const clique::Network& net,
                              const std::string& algo,
                              std::uint64_t graph_hash, std::int64_t batch,
                              std::string state) {
  Checkpoint ck;
  ck.algo = algo;
  ck.graph_hash = graph_hash;
  ck.routing_mode = clique::to_string(net.routing_mode());
  ck.threads = threads_;
  ck.batch = batch;
  const fault::FaultPlan* plan = net.fault_plan();
  if (plan != nullptr) {
    ck.has_fault_plan = true;
    ck.fault_spec = fault::to_string(plan->spec());
    ck.fault_seed = plan->seed();
    ck.fault_state = plan->snapshot();
  }
  ck.net = net.snapshot();
  if (net.tracer() != nullptr) {
    ck.has_ledger = true;
    ck.ledger = net.tracer()->snapshot();
  }
  ck.state = std::move(state);
  save_checkpoint(path_, ck);
  ++written_;
}

void maybe_preempt(const fault::FaultPlan* plan, std::int64_t batch) {
  if (plan != nullptr && plan->preempt_due(batch)) {
    throw fault::PreemptError(batch);
  }
}

namespace {
/// The calling thread's boundary check (empty = none).  Thread-local, so
/// concurrent serve requests each enforce their own deadline.
thread_local CancellationFn tls_cancellation;
}  // namespace

CancellationScope::CancellationScope(CancellationFn fn)
    : prev_(std::move(tls_cancellation)) {
  tls_cancellation = std::move(fn);
}

CancellationScope::~CancellationScope() { tls_cancellation = std::move(prev_); }

void poll_cancellation(std::int64_t batch) {
  if (tls_cancellation) tls_cancellation(batch);
}

void boundary(const CheckpointHooks& hooks, clique::Network& net,
              std::int64_t batch, const char* algo, std::uint64_t graph_hash,
              const std::function<std::string()>& encode_state) {
  if (hooks.writer != nullptr && hooks.writer->due(batch)) {
    hooks.writer->commit(net, algo, graph_hash, batch, encode_state());
  }
  maybe_preempt(net.fault_plan(), batch);
}

}  // namespace lapclique::ckpt

// Preconditioned Chebyshev iteration (Theorem 2.2, after [Pen13; Saa03]).
//
// Given symmetric PSD A and B with A <= B <= kappa*A (Loewner order), the
// iteration realizes a linear operator Z on b with
//     (1 - eps) A^+  <=  Z  <=  (1 + eps) A^+
// in O(sqrt(kappa) log(1/eps)) iterations, each consisting of one
// matrix-vector product with A, one solve with B, and O(1) vector ops.
//
// This is the engine of Corollary 2.3: with B = alpha*L_H for an
// alpha-approximate sparsifier H, kappa = alpha^2 ... the paper sets
// A := L_G, B := alpha L_H, kappa := alpha (after rewriting
// L_G <= alpha L_H <= alpha^2 L_G); we expose kappa directly.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/round_ledger.hpp"

namespace lapclique::linalg {

using ApplyFn = std::function<Vec(std::span<const double>)>;

struct ChebyshevStats {
  int iterations = 0;
  double final_residual = 0;            ///< ||b - A x||_2 (diagnostic only)
  std::vector<double> residual_trace;   ///< per-iteration, when requested
};

struct ChebyshevOptions {
  double eps = 1e-8;        ///< target relative error (Theorem 2.2 sense)
  double kappa = 2.0;       ///< A <= B <= kappa A
  int max_iterations = -1;  ///< override; -1 = ceil(sqrt(kappa) ln(2/eps)) + 1
  bool record_trace = false;
  /// Observability: iteration counts are reported here when attached (each
  /// iteration is one model broadcast round in the clique accounting).
  obs::RoundLedger* ledger = nullptr;
  /// Fused-triad fast path.  When non-null, `apply_a` MUST be exactly
  /// "multiply by *a_matrix" (it is then never called): each iteration runs
  /// one fused p/x update pass plus CsrMatrix::multiply_axpy_into instead of
  /// four separate vector sweeps.  Every per-element arithmetic sequence is
  /// unchanged, so the fused iterate is bit-identical to the unfused twin —
  /// tests/test_backend.cpp pins that equality.
  const CsrMatrix* a_matrix = nullptr;
};

/// PreconCheby(A, B, b, kappa, eps): returns x ~= A^+ b.
/// `apply_a` applies A; `solve_b` applies B^{-1} (a solve involving B).
Vec preconditioned_chebyshev(const ApplyFn& apply_a, const ApplyFn& solve_b,
                             std::span<const double> b, const ChebyshevOptions& opt,
                             ChebyshevStats* stats = nullptr);

/// Multi-RHS operator application: one call applies A (or B^{-1}) to every
/// column, sharing the matrix pass (CsrMatrix::multiply_block,
/// LaplacianFactor::solve_block).
using BlockApplyFn = std::function<std::vector<Vec>(std::span<const Vec>)>;

/// Batched PreconCheby over k right-hand sides.  The Chebyshev recurrence
/// coefficients depend only on (kappa, eps) — never on the data — and the
/// iteration count is fixed up front, so column c of the result is
/// bit-identical to preconditioned_chebyshev(b[c]) while every iteration's
/// matvec and preconditioner solve is one shared block pass.  Per-column
/// ChebyshevStats land in `stats` (resized to k) when non-null; the ledger
/// counter records the per-column iteration total, matching k scalar calls.
std::vector<Vec> preconditioned_chebyshev_block(const BlockApplyFn& apply_a,
                                                const BlockApplyFn& solve_b,
                                                std::span<const Vec> b,
                                                const ChebyshevOptions& opt,
                                                std::vector<ChebyshevStats>* stats = nullptr);

/// Theoretical iteration count for given kappa/eps (Theorem 2.2, item 2).
int chebyshev_iteration_bound(double kappa, double eps);

}  // namespace lapclique::linalg

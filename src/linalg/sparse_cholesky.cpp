#include "linalg/sparse_cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lapclique::linalg {

SparseLdlt SparseLdlt::factor(const CsrMatrix& a, double min_pivot) {
  const int n = a.size();
  SparseLdlt f;
  f.n_ = n;
  f.d_.assign(static_cast<std::size_t>(n), 0.0);

  // Column-wise dynamic storage of L's strictly-lower part.
  std::vector<std::vector<int>> lrow(static_cast<std::size_t>(n));
  std::vector<std::vector<double>> lval(static_cast<std::size_t>(n));

  // Dense scatter workspace for the current column.
  std::vector<double> work(static_cast<std::size_t>(n), 0.0);
  std::vector<char> marked(static_cast<std::size_t>(n), 0);
  std::vector<int> touched;

  const auto rowptr = a.row_ptr();
  const auto colidx = a.col_idx();
  const auto avals = a.values();

  // next_in_col[j]: cursor into lrow[j] used for the left-looking update
  // pattern; cols_hitting[j]: columns k whose next unprocessed row is j.
  std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> cols_hitting(static_cast<std::size_t>(n));

  for (int j = 0; j < n; ++j) {
    // Scatter A(j:n, j) (use row j of the symmetric CSR).
    touched.clear();
    double diag = 0.0;
    for (int k = rowptr[static_cast<std::size_t>(j)];
         k < rowptr[static_cast<std::size_t>(j) + 1]; ++k) {
      const int i = colidx[static_cast<std::size_t>(k)];
      if (i == j) {
        diag = avals[static_cast<std::size_t>(k)];
      } else if (i > j) {
        work[static_cast<std::size_t>(i)] = avals[static_cast<std::size_t>(k)];
        marked[static_cast<std::size_t>(i)] = 1;
        touched.push_back(i);
      }
    }

    // Left-looking update: for each earlier column c with L(j,c) != 0,
    // subtract L(j,c)*d(c)*L(i,c) from column j.
    for (int c : cols_hitting[static_cast<std::size_t>(j)]) {
      const std::size_t pos = cursor[static_cast<std::size_t>(c)];
      const double ljc = lval[static_cast<std::size_t>(c)][pos];
      const double mult = ljc * f.d_[static_cast<std::size_t>(c)];
      diag -= mult * ljc;
      const auto& rows = lrow[static_cast<std::size_t>(c)];
      const auto& vals = lval[static_cast<std::size_t>(c)];
      for (std::size_t p = pos + 1; p < rows.size(); ++p) {
        const int i = rows[p];
        if (marked[static_cast<std::size_t>(i)] == 0) {
          marked[static_cast<std::size_t>(i)] = 1;
          touched.push_back(i);
        }
        work[static_cast<std::size_t>(i)] -= mult * vals[p];
      }
      // Advance c's cursor to its next row and re-register.
      cursor[static_cast<std::size_t>(c)] = pos + 1;
      if (pos + 1 < rows.size()) {
        cols_hitting[static_cast<std::size_t>(rows[pos + 1])].push_back(c);
      }
    }
    cols_hitting[static_cast<std::size_t>(j)].clear();

    if (!(std::abs(diag) > min_pivot)) {
      throw std::runtime_error("SparseLdlt: pivot collapsed; matrix not SPD enough");
    }
    f.d_[static_cast<std::size_t>(j)] = diag;

    std::sort(touched.begin(), touched.end());
    auto& rows_j = lrow[static_cast<std::size_t>(j)];
    auto& vals_j = lval[static_cast<std::size_t>(j)];
    rows_j.reserve(touched.size());
    vals_j.reserve(touched.size());
    for (int i : touched) {
      const double v = work[static_cast<std::size_t>(i)] / diag;
      work[static_cast<std::size_t>(i)] = 0.0;
      marked[static_cast<std::size_t>(i)] = 0;
      if (v != 0.0) {
        rows_j.push_back(i);
        vals_j.push_back(v);
      }
    }
    if (!rows_j.empty()) {
      cursor[static_cast<std::size_t>(j)] = 0;
      cols_hitting[static_cast<std::size_t>(rows_j[0])].push_back(j);
    }
  }

  // Compress to column-compressed storage.
  f.colptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t nnz = 0;
  for (int j = 0; j < n; ++j) nnz += lrow[static_cast<std::size_t>(j)].size();
  f.rowidx_.reserve(nnz);
  f.vals_.reserve(nnz);
  for (int j = 0; j < n; ++j) {
    f.colptr_[static_cast<std::size_t>(j)] = static_cast<int>(f.rowidx_.size());
    f.rowidx_.insert(f.rowidx_.end(), lrow[static_cast<std::size_t>(j)].begin(),
                     lrow[static_cast<std::size_t>(j)].end());
    f.vals_.insert(f.vals_.end(), lval[static_cast<std::size_t>(j)].begin(),
                   lval[static_cast<std::size_t>(j)].end());
  }
  f.colptr_[static_cast<std::size_t>(n)] = static_cast<int>(f.rowidx_.size());
  return f;
}

std::int64_t SparseLdlt::fill_nnz() const {
  return static_cast<std::int64_t>(vals_.size()) + n_;
}

Vec SparseLdlt::solve(std::span<const double> b) const {
  if (static_cast<int>(b.size()) != n_) {
    throw std::invalid_argument("SparseLdlt::solve: size mismatch");
  }
  Vec x(b.begin(), b.end());
  // Forward: L y = b (column-oriented).
  for (int j = 0; j < n_; ++j) {
    const double xj = x[static_cast<std::size_t>(j)];
    for (int k = colptr_[static_cast<std::size_t>(j)];
         k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      x[static_cast<std::size_t>(rowidx_[static_cast<std::size_t>(k)])] -=
          vals_[static_cast<std::size_t>(k)] * xj;
    }
  }
  for (int j = 0; j < n_; ++j) x[static_cast<std::size_t>(j)] /= d_[static_cast<std::size_t>(j)];
  // Backward: L^T x = y.
  for (int j = n_ - 1; j >= 0; --j) {
    double s = x[static_cast<std::size_t>(j)];
    for (int k = colptr_[static_cast<std::size_t>(j)];
         k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      s -= vals_[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(rowidx_[static_cast<std::size_t>(k)])];
    }
    x[static_cast<std::size_t>(j)] = s;
  }
  return x;
}

}  // namespace lapclique::linalg

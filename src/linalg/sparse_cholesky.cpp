#include "linalg/sparse_cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lapclique::linalg {

std::vector<int> rcm_ordering(const CsrMatrix& a) {
  const int n = a.size();
  const auto rowptr = a.row_ptr();
  const auto colidx = a.col_idx();

  // Off-diagonal degree per vertex; the diagonal never influences the order.
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    int d = 0;
    for (int k = rowptr[static_cast<std::size_t>(v)];
         k < rowptr[static_cast<std::size_t>(v) + 1]; ++k) {
      if (colidx[static_cast<std::size_t>(k)] != v) ++d;
    }
    degree[static_cast<std::size_t>(v)] = d;
  }

  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<int> nbrs;

  // Per component: BFS from the minimum-degree vertex (ties → smallest id,
  // found by the ascending scan below), neighbors appended sorted by
  // (degree, id).  Components are discovered in ascending seed-id order, so
  // the whole ordering is a pure function of the pattern.
  for (int seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)] != 0) continue;
    // Find the minimum-degree unvisited vertex reachable from seed: first
    // collect the component with a throwaway DFS, then pick the start.
    std::vector<int> comp_vertices;
    {
      std::vector<int> stack{seed};
      visited[static_cast<std::size_t>(seed)] = 1;
      while (!stack.empty()) {
        const int v = stack.back();
        stack.pop_back();
        comp_vertices.push_back(v);
        for (int k = rowptr[static_cast<std::size_t>(v)];
             k < rowptr[static_cast<std::size_t>(v) + 1]; ++k) {
          const int u = colidx[static_cast<std::size_t>(k)];
          if (u != v && visited[static_cast<std::size_t>(u)] == 0) {
            visited[static_cast<std::size_t>(u)] = 1;
            stack.push_back(u);
          }
        }
      }
    }
    int start = comp_vertices[0];
    for (int v : comp_vertices) {
      const auto dv = degree[static_cast<std::size_t>(v)];
      const auto ds = degree[static_cast<std::size_t>(start)];
      if (dv < ds || (dv == ds && v < start)) start = v;
    }
    // BFS from `start` over the component (re-using `visited` as "placed").
    for (int v : comp_vertices) visited[static_cast<std::size_t>(v)] = 0;
    std::vector<int> queue{start};
    visited[static_cast<std::size_t>(start)] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int v = queue[head];
      order.push_back(v);
      nbrs.clear();
      for (int k = rowptr[static_cast<std::size_t>(v)];
           k < rowptr[static_cast<std::size_t>(v) + 1]; ++k) {
        const int u = colidx[static_cast<std::size_t>(k)];
        if (u != v && visited[static_cast<std::size_t>(u)] == 0) {
          visited[static_cast<std::size_t>(u)] = 1;
          nbrs.push_back(u);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](int x, int y) {
        const auto dx = degree[static_cast<std::size_t>(x)];
        const auto dy = degree[static_cast<std::size_t>(y)];
        return dx != dy ? dx < dy : x < y;
      });
      queue.insert(queue.end(), nbrs.begin(), nbrs.end());
    }
  }

  std::reverse(order.begin(), order.end());
  return order;
}

SparseLdlt SparseLdlt::factor(const CsrMatrix& a, double min_pivot) {
  const int n = a.size();
  SparseLdlt f;
  f.n_ = n;
  f.d_.assign(static_cast<std::size_t>(n), 0.0);

  // Column-wise dynamic storage of L's strictly-lower part.
  std::vector<std::vector<int>> lrow(static_cast<std::size_t>(n));
  std::vector<std::vector<double>> lval(static_cast<std::size_t>(n));

  // Dense scatter workspace for the current column.
  std::vector<double> work(static_cast<std::size_t>(n), 0.0);
  std::vector<char> marked(static_cast<std::size_t>(n), 0);
  std::vector<int> touched;

  const auto rowptr = a.row_ptr();
  const auto colidx = a.col_idx();
  const auto avals = a.values();

  // next_in_col[j]: cursor into lrow[j] used for the left-looking update
  // pattern; cols_hitting[j]: columns k whose next unprocessed row is j.
  std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> cols_hitting(static_cast<std::size_t>(n));

  for (int j = 0; j < n; ++j) {
    // Scatter A(j:n, j) (use row j of the symmetric CSR).
    touched.clear();
    double diag = 0.0;
    for (int k = rowptr[static_cast<std::size_t>(j)];
         k < rowptr[static_cast<std::size_t>(j) + 1]; ++k) {
      const int i = colidx[static_cast<std::size_t>(k)];
      if (i == j) {
        diag = avals[static_cast<std::size_t>(k)];
      } else if (i > j) {
        work[static_cast<std::size_t>(i)] = avals[static_cast<std::size_t>(k)];
        marked[static_cast<std::size_t>(i)] = 1;
        touched.push_back(i);
      }
    }

    // Left-looking update: for each earlier column c with L(j,c) != 0,
    // subtract L(j,c)*d(c)*L(i,c) from column j.
    for (int c : cols_hitting[static_cast<std::size_t>(j)]) {
      const std::size_t pos = cursor[static_cast<std::size_t>(c)];
      const double ljc = lval[static_cast<std::size_t>(c)][pos];
      const double mult = ljc * f.d_[static_cast<std::size_t>(c)];
      diag -= mult * ljc;
      const auto& rows = lrow[static_cast<std::size_t>(c)];
      const auto& vals = lval[static_cast<std::size_t>(c)];
      for (std::size_t p = pos + 1; p < rows.size(); ++p) {
        const int i = rows[p];
        if (marked[static_cast<std::size_t>(i)] == 0) {
          marked[static_cast<std::size_t>(i)] = 1;
          touched.push_back(i);
        }
        work[static_cast<std::size_t>(i)] -= mult * vals[p];
      }
      // Advance c's cursor to its next row and re-register.
      cursor[static_cast<std::size_t>(c)] = pos + 1;
      if (pos + 1 < rows.size()) {
        cols_hitting[static_cast<std::size_t>(rows[pos + 1])].push_back(c);
      }
    }
    cols_hitting[static_cast<std::size_t>(j)].clear();

    if (!(std::abs(diag) > min_pivot)) {
      throw std::runtime_error("SparseLdlt: pivot collapsed; matrix not SPD enough");
    }
    f.d_[static_cast<std::size_t>(j)] = diag;

    std::sort(touched.begin(), touched.end());
    auto& rows_j = lrow[static_cast<std::size_t>(j)];
    auto& vals_j = lval[static_cast<std::size_t>(j)];
    rows_j.reserve(touched.size());
    vals_j.reserve(touched.size());
    for (int i : touched) {
      const double v = work[static_cast<std::size_t>(i)] / diag;
      work[static_cast<std::size_t>(i)] = 0.0;
      marked[static_cast<std::size_t>(i)] = 0;
      if (v != 0.0) {
        rows_j.push_back(i);
        vals_j.push_back(v);
      }
    }
    if (!rows_j.empty()) {
      cursor[static_cast<std::size_t>(j)] = 0;
      cols_hitting[static_cast<std::size_t>(rows_j[0])].push_back(j);
    }
  }

  // Compress to column-compressed storage.
  f.colptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t nnz = 0;
  for (int j = 0; j < n; ++j) nnz += lrow[static_cast<std::size_t>(j)].size();
  f.rowidx_.reserve(nnz);
  f.vals_.reserve(nnz);
  for (int j = 0; j < n; ++j) {
    f.colptr_[static_cast<std::size_t>(j)] = static_cast<int>(f.rowidx_.size());
    f.rowidx_.insert(f.rowidx_.end(), lrow[static_cast<std::size_t>(j)].begin(),
                     lrow[static_cast<std::size_t>(j)].end());
    f.vals_.insert(f.vals_.end(), lval[static_cast<std::size_t>(j)].begin(),
                   lval[static_cast<std::size_t>(j)].end());
  }
  f.colptr_[static_cast<std::size_t>(n)] = static_cast<int>(f.rowidx_.size());
  return f;
}

std::int64_t SparseLdlt::fill_nnz() const {
  return static_cast<std::int64_t>(vals_.size()) + n_;
}

Vec SparseLdlt::solve(std::span<const double> b) const {
  if (static_cast<int>(b.size()) != n_) {
    throw std::invalid_argument("SparseLdlt::solve: size mismatch");
  }
  Vec x(b.begin(), b.end());
  // Forward: L y = b (column-oriented).
  for (int j = 0; j < n_; ++j) {
    const double xj = x[static_cast<std::size_t>(j)];
    for (int k = colptr_[static_cast<std::size_t>(j)];
         k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      x[static_cast<std::size_t>(rowidx_[static_cast<std::size_t>(k)])] -=
          vals_[static_cast<std::size_t>(k)] * xj;
    }
  }
  for (int j = 0; j < n_; ++j) x[static_cast<std::size_t>(j)] /= d_[static_cast<std::size_t>(j)];
  // Backward: L^T x = y.
  for (int j = n_ - 1; j >= 0; --j) {
    double s = x[static_cast<std::size_t>(j)];
    for (int k = colptr_[static_cast<std::size_t>(j)];
         k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      s -= vals_[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(rowidx_[static_cast<std::size_t>(k)])];
    }
    x[static_cast<std::size_t>(j)] = s;
  }
  return x;
}

void SparseLdlt::solve_block_inplace(std::span<Vec> xs) const {
  const std::size_t ncols = xs.size();
  if (ncols == 0) return;
  if (ncols == 1) {
    Vec r = solve(xs[0]);
    xs[0] = std::move(r);
    return;
  }
  for (const Vec& col : xs) {
    if (static_cast<int>(col.size()) != n_) {
      throw std::invalid_argument("SparseLdlt::solve_block: size mismatch");
    }
  }
  std::vector<double*> xv(ncols);
  for (std::size_t c = 0; c < ncols; ++c) xv[c] = xs[c].data();

  // The schedule below is solve()'s column walk verbatim; every scatter and
  // gather gains an inner loop over RHS columns, so the factor column is
  // read once per step while each column's reduction order (ascending k)
  // is unchanged from the scalar kernel.

  // Forward: L y = b (column-oriented).
  for (int j = 0; j < n_; ++j) {
    for (int k = colptr_[static_cast<std::size_t>(j)];
         k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      const auto i = static_cast<std::size_t>(rowidx_[static_cast<std::size_t>(k)]);
      const double v = vals_[static_cast<std::size_t>(k)];
      for (std::size_t c = 0; c < ncols; ++c) {
        xv[c][i] -= v * xv[c][static_cast<std::size_t>(j)];
      }
    }
  }
  for (int j = 0; j < n_; ++j) {
    const double dj = d_[static_cast<std::size_t>(j)];
    for (std::size_t c = 0; c < ncols; ++c) xv[c][static_cast<std::size_t>(j)] /= dj;
  }
  // Backward: L^T x = y.
  for (int j = n_ - 1; j >= 0; --j) {
    for (std::size_t c = 0; c < ncols; ++c) {
      double s = xv[c][static_cast<std::size_t>(j)];
      for (int k = colptr_[static_cast<std::size_t>(j)];
           k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
        s -= vals_[static_cast<std::size_t>(k)] *
             xv[c][static_cast<std::size_t>(rowidx_[static_cast<std::size_t>(k)])];
      }
      xv[c][static_cast<std::size_t>(j)] = s;
    }
  }
}

SparseLaplacianFactor SparseLaplacianFactor::factor(const CsrMatrix& laplacian) {
  SparseLaplacianFactor f;
  const int n = laplacian.size();
  f.n_ = n;
  f.comp_.assign(static_cast<std::size_t>(n), -1);

  // Components via DFS over the sparsity pattern — the exact walk of
  // linalg::LaplacianFactor::factor, so comp_/grounded_ (and therefore the
  // projection arithmetic) match the dense wrapper vertex for vertex.
  const auto rowptr = laplacian.row_ptr();
  const auto colidx = laplacian.col_idx();
  const auto avals = laplacian.values();
  int comps = 0;
  std::vector<int> stack;
  for (int s = 0; s < n; ++s) {
    if (f.comp_[static_cast<std::size_t>(s)] != -1) continue;
    const int c = comps++;
    stack.push_back(s);
    f.comp_[static_cast<std::size_t>(s)] = c;
    f.grounded_.push_back(s);
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int k = rowptr[static_cast<std::size_t>(v)];
           k < rowptr[static_cast<std::size_t>(v) + 1]; ++k) {
        const int u = colidx[static_cast<std::size_t>(k)];
        if (f.comp_[static_cast<std::size_t>(u)] == -1) {
          f.comp_[static_cast<std::size_t>(u)] = c;
          stack.push_back(u);
        }
      }
    }
  }
  f.num_components_ = comps;

  // Grounded matrix, kept sparse: drop every entry touching a grounded
  // vertex and pin those diagonals to 1 — the sparse twin of the dense
  // wrapper's row/col identity pinning.  The result is SPD.
  std::vector<char> is_grounded(static_cast<std::size_t>(n), 0);
  for (int g : f.grounded_) is_grounded[static_cast<std::size_t>(g)] = 1;
  std::vector<Triplet> t;
  t.reserve(avals.size() + static_cast<std::size_t>(comps));
  for (int r = 0; r < n; ++r) {
    if (is_grounded[static_cast<std::size_t>(r)] != 0) {
      t.push_back({r, r, 1.0});
      continue;
    }
    for (int k = rowptr[static_cast<std::size_t>(r)];
         k < rowptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const int c = colidx[static_cast<std::size_t>(k)];
      if (is_grounded[static_cast<std::size_t>(c)] != 0) continue;
      t.push_back({r, c, avals[static_cast<std::size_t>(k)]});
    }
  }
  const CsrMatrix grounded = CsrMatrix::from_triplets(n, t);

  // Deterministic fill-reducing ordering of the grounded pattern, then
  // factor the permuted matrix.
  f.perm_ = rcm_ordering(grounded);
  f.iperm_.assign(static_cast<std::size_t>(n), 0);
  for (int p = 0; p < n; ++p) {
    f.iperm_[static_cast<std::size_t>(f.perm_[static_cast<std::size_t>(p)])] = p;
  }
  std::vector<Triplet> pt;
  pt.reserve(grounded.values().size());
  const auto grp = grounded.row_ptr();
  const auto gci = grounded.col_idx();
  const auto gv = grounded.values();
  for (int r = 0; r < n; ++r) {
    const int pr = f.iperm_[static_cast<std::size_t>(r)];
    for (int k = grp[static_cast<std::size_t>(r)];
         k < grp[static_cast<std::size_t>(r) + 1]; ++k) {
      pt.push_back({pr, f.iperm_[static_cast<std::size_t>(gci[static_cast<std::size_t>(k)])],
                    gv[static_cast<std::size_t>(k)]});
    }
  }
  f.ldlt_ = SparseLdlt::factor(CsrMatrix::from_triplets(n, pt));
  return f;
}

Vec SparseLaplacianFactor::project_rhs(std::span<const double> b) const {
  // Per-component mean subtraction in ascending vertex order — the same
  // accumulation sequence as LaplacianFactor::solve, bit for bit.
  std::vector<double> mean(static_cast<std::size_t>(num_components_), 0.0);
  std::vector<int> count(static_cast<std::size_t>(num_components_), 0);
  for (int v = 0; v < n_; ++v) {
    mean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])] +=
        b[static_cast<std::size_t>(v)];
    ++count[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
  }
  for (int c = 0; c < num_components_; ++c) {
    mean[static_cast<std::size_t>(c)] /= static_cast<double>(count[static_cast<std::size_t>(c)]);
  }
  Vec rhs(b.begin(), b.end());
  for (int v = 0; v < n_; ++v) {
    rhs[static_cast<std::size_t>(v)] -= mean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
  }
  for (int g : grounded_) rhs[static_cast<std::size_t>(g)] = 0.0;
  return rhs;
}

void SparseLaplacianFactor::normalize(std::span<double> x) const {
  std::vector<double> xmean(static_cast<std::size_t>(num_components_), 0.0);
  std::vector<int> count(static_cast<std::size_t>(num_components_), 0);
  for (int v = 0; v < n_; ++v) {
    xmean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])] +=
        x[static_cast<std::size_t>(v)];
    ++count[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
  }
  for (int c = 0; c < num_components_; ++c) {
    xmean[static_cast<std::size_t>(c)] /= static_cast<double>(count[static_cast<std::size_t>(c)]);
  }
  for (int v = 0; v < n_; ++v) {
    x[static_cast<std::size_t>(v)] -= xmean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
  }
}

Vec SparseLaplacianFactor::solve(std::span<const double> b) const {
  if (static_cast<int>(b.size()) != n_) {
    throw std::invalid_argument("SparseLaplacianFactor::solve: size mismatch");
  }
  const Vec rhs = project_rhs(b);
  Vec prhs(static_cast<std::size_t>(n_));
  for (int p = 0; p < n_; ++p) {
    prhs[static_cast<std::size_t>(p)] = rhs[static_cast<std::size_t>(perm_[static_cast<std::size_t>(p)])];
  }
  const Vec px = ldlt_.solve(prhs);
  Vec x(static_cast<std::size_t>(n_));
  for (int p = 0; p < n_; ++p) {
    x[static_cast<std::size_t>(perm_[static_cast<std::size_t>(p)])] = px[static_cast<std::size_t>(p)];
  }
  normalize(x);
  return x;
}

std::vector<Vec> SparseLaplacianFactor::solve_block(std::span<const Vec> b) const {
  const std::size_t ncols = b.size();
  std::vector<Vec> xs(ncols);
  if (ncols == 0) return xs;
  for (const Vec& col : b) {
    if (static_cast<int>(col.size()) != n_) {
      throw std::invalid_argument("SparseLaplacianFactor::solve_block: size mismatch");
    }
  }
  for (std::size_t c = 0; c < ncols; ++c) {
    const Vec rhs = project_rhs(b[c]);
    Vec prhs(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      prhs[static_cast<std::size_t>(p)] =
          rhs[static_cast<std::size_t>(perm_[static_cast<std::size_t>(p)])];
    }
    xs[c] = std::move(prhs);
  }
  ldlt_.solve_block_inplace(xs);
  for (std::size_t c = 0; c < ncols; ++c) {
    Vec x(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      x[static_cast<std::size_t>(perm_[static_cast<std::size_t>(p)])] =
          xs[c][static_cast<std::size_t>(p)];
    }
    normalize(x);
    xs[c] = std::move(x);
  }
  return xs;
}

}  // namespace lapclique::linalg

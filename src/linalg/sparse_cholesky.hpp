// Sparse left-looking LDL^T for symmetric positive definite matrices in CSR,
// a deterministic fill-reducing ordering, and a Laplacian-aware wrapper that
// mirrors linalg::LaplacianFactor on sparse storage.
//
// This is the `sparse` half of the linalg::Backend seam (backend.hpp): the
// sparsifiers this library factors have O(n log n) edges, so past a few
// hundred vertices an RCM-ordered sparse factor beats the dense O(n^3) path
// by orders of magnitude (the committed BENCH_laplacian.json records the
// crossover).  Everything here is sequential and therefore trivially
// bit-stable across thread counts; determinism only requires that the
// ordering itself be a pure function of the sparsity pattern, which
// rcm_ordering guarantees by breaking every tie on the smaller vertex id.
#pragma once

#include <span>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"

namespace lapclique::linalg {

/// Reverse Cuthill–McKee ordering of a symmetric CSR pattern, fully
/// deterministic: per component the BFS starts from the minimum-degree
/// vertex (ties → smallest id) and neighbors enqueue sorted by
/// (degree, id).  Returns perm with perm[new_pos] = old_index.
[[nodiscard]] std::vector<int> rcm_ordering(const CsrMatrix& a);

class SparseLdlt {
 public:
  SparseLdlt() = default;

  /// Factors an SPD CSR matrix.  Throws on pivot collapse.
  static SparseLdlt factor(const CsrMatrix& a, double min_pivot = 1e-300);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] std::int64_t fill_nnz() const;

  [[nodiscard]] Vec solve(std::span<const double> b) const;

  /// Multi-RHS triangular solves: one walk over the factor serves every
  /// column.  The column-oriented schedule is exactly solve()'s with an
  /// inner loop over RHS columns, so each column's floating-point reduction
  /// order — and therefore its bits — matches a standalone solve.
  void solve_block_inplace(std::span<Vec> xs) const;

 private:
  int n_ = 0;
  // Column-compressed unit lower triangle (strictly below diagonal).
  std::vector<int> colptr_;
  std::vector<int> rowidx_;
  std::vector<double> vals_;
  std::vector<double> d_;
};

/// Sparse twin of linalg::LaplacianFactor: solves L x = b exactly (up to fp
/// error) via per-component grounding, an RCM-permuted SparseLdlt of the
/// grounded matrix, and the same range-projection / mean-zero normalization
/// arithmetic as the dense wrapper (identical accumulation order, so the
/// projection bits match the dense path even though the substitution bits
/// legitimately differ with the ordering).
class SparseLaplacianFactor {
 public:
  SparseLaplacianFactor() = default;
  static SparseLaplacianFactor factor(const CsrMatrix& laplacian);

  [[nodiscard]] int size() const { return n_; }

  /// x = L^+ b.  (b is projected onto the range of L per component first.)
  [[nodiscard]] Vec solve(std::span<const double> b) const;

  /// Multi-RHS pseudoinverse action: column c is bit-identical to
  /// solve(b[c]) — projection, substitution, and normalization all run the
  /// per-column arithmetic of the scalar path while sharing the factor walk.
  [[nodiscard]] std::vector<Vec> solve_block(std::span<const Vec> b) const;

  [[nodiscard]] int num_components() const { return num_components_; }
  [[nodiscard]] std::span<const int> component_of() const { return comp_; }
  [[nodiscard]] std::int64_t fill_nnz() const { return ldlt_.fill_nnz(); }

 private:
  /// Project b per component onto range(L) and zero the grounded entries.
  [[nodiscard]] Vec project_rhs(std::span<const double> b) const;
  /// Subtract the per-component mean from x (pseudoinverse normalization).
  void normalize(std::span<double> x) const;

  int n_ = 0;
  int num_components_ = 0;
  std::vector<int> comp_;      ///< component id per vertex
  std::vector<int> grounded_;  ///< one grounded vertex per component
  std::vector<int> perm_;      ///< RCM: perm_[new] = old
  std::vector<int> iperm_;     ///< inverse: iperm_[old] = new
  SparseLdlt ldlt_;            ///< factor of the permuted grounded matrix
};

}  // namespace lapclique::linalg

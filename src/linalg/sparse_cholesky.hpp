// Sparse up-looking LDL^T for symmetric positive definite matrices in CSR.
//
// Natural ordering, dynamic fill-in.  Intended for the moderately sized,
// already-sparse systems this library factors (sparsifiers with O(n log n)
// edges); for small n the dense path in cholesky.hpp is faster and the
// Laplacian solver picks automatically.
#pragma once

#include <span>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"

namespace lapclique::linalg {

class SparseLdlt {
 public:
  SparseLdlt() = default;

  /// Factors an SPD CSR matrix.  Throws on pivot collapse.
  static SparseLdlt factor(const CsrMatrix& a, double min_pivot = 1e-300);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] std::int64_t fill_nnz() const;

  [[nodiscard]] Vec solve(std::span<const double> b) const;

 private:
  int n_ = 0;
  // Column-compressed unit lower triangle (strictly below diagonal).
  std::vector<int> colptr_;
  std::vector<int> rowidx_;
  std::vector<double> vals_;
  std::vector<double> d_;
};

}  // namespace lapclique::linalg

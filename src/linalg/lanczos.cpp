#include "linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lapclique::linalg {

std::vector<double> tridiagonal_eigenvalues(std::vector<double> alpha,
                                            std::vector<double> beta) {
  // Implicit QL with Wilkinson shifts (tql1-style, eigenvalues only).
  const int n = static_cast<int>(alpha.size());
  if (static_cast<int>(beta.size()) + 1 != n && n > 0) {
    throw std::invalid_argument("tridiagonal_eigenvalues: beta size must be n-1");
  }
  if (n == 0) return {};
  std::vector<double> d = std::move(alpha);
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i + 1 < n; ++i) e[static_cast<std::size_t>(i)] = beta[static_cast<std::size_t>(i)];

  for (int l = 0; l < n; ++l) {
    int iter = 0;
    while (true) {
      int m = l;
      for (; m + 1 < n; ++m) {
        const double dd = std::abs(d[static_cast<std::size_t>(m)]) +
                          std::abs(d[static_cast<std::size_t>(m) + 1]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <= 1e-15 * dd) break;
      }
      if (m == l) break;
      if (++iter > 64) {
        throw std::runtime_error("tridiagonal_eigenvalues: no convergence");
      }
      double g = (d[static_cast<std::size_t>(l) + 1] - d[static_cast<std::size_t>(l)]) /
                 (2.0 * e[static_cast<std::size_t>(l)]);
      double r = std::hypot(g, 1.0);
      g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
          e[static_cast<std::size_t>(l)] / (g + (g >= 0 ? std::abs(r) : -std::abs(r)));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      for (int i = m - 1; i >= l; --i) {
        double f = s * e[static_cast<std::size_t>(i)];
        const double b = c * e[static_cast<std::size_t>(i)];
        r = std::hypot(f, g);
        e[static_cast<std::size_t>(i) + 1] = r;
        if (r == 0.0) {
          d[static_cast<std::size_t>(i) + 1] -= p;
          e[static_cast<std::size_t>(m)] = 0.0;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[static_cast<std::size_t>(i) + 1] - p;
        r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
        p = s * r;
        d[static_cast<std::size_t>(i) + 1] = g + p;
        g = c * r - b;
      }
      if (r == 0.0 && m - 1 >= l) continue;
      d[static_cast<std::size_t>(l)] -= p;
      e[static_cast<std::size_t>(l)] = g;
      e[static_cast<std::size_t>(m)] = 0.0;
    }
  }
  std::sort(d.begin(), d.end());
  return d;
}

LanczosResult lanczos(const std::function<Vec(std::span<const double>)>& apply,
                      int n, const LanczosOptions& opt) {
  if (n < 1) throw std::invalid_argument("lanczos: n >= 1 required");
  const auto deflate = [&opt](Vec& x) {
    for (const Vec& d : opt.deflate) {
      const double nd = dot(d, d);
      if (nd <= 0) continue;
      axpy(-dot(x, d) / nd, d, x);
    }
  };

  // Deterministic start vector.
  Vec v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto h = (static_cast<std::uint64_t>(i) + opt.deterministic_salt) *
                   0x9E3779B97F4A7C15ULL;
    v[static_cast<std::size_t>(i)] =
        static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5;
  }
  deflate(v);
  double nv = norm2(v);
  if (!(nv > 0)) {
    v.assign(static_cast<std::size_t>(n), 0.0);
    v[0] = 1.0;
    deflate(v);
    nv = norm2(v);
    if (!(nv > 0)) return {};
  }
  scale(1.0 / nv, v);

  std::vector<Vec> basis{v};
  std::vector<double> alpha;
  std::vector<double> beta;
  LanczosResult out;

  // The usable dimension shrinks by one per deflated direction.
  const int cap = std::max(
      1, std::min(opt.max_iterations, n - static_cast<int>(opt.deflate.size())));
  Vec w;
  for (int k = 0; k < cap; ++k) {
    w = apply(basis.back());
    deflate(w);
    const double a = dot(w, basis.back());
    alpha.push_back(a);
    axpy(-a, basis.back(), w);
    if (basis.size() >= 2) {
      axpy(-beta.back(), basis[basis.size() - 2], w);
    }
    // Full reorthogonalization (small Krylov spaces; stability first).
    for (const Vec& q : basis) axpy(-dot(w, q), q, w);
    const double b = norm2(w);
    ++out.iterations;
    if (b < opt.beta_tol) break;
    beta.push_back(b);
    scale(1.0 / b, w);
    basis.push_back(w);
  }
  // A final beta may connect to a basis vector that was never processed.
  if (!alpha.empty() && beta.size() >= alpha.size()) beta.resize(alpha.size() - 1);
  out.eigenvalues = tridiagonal_eigenvalues(alpha, beta);
  return out;
}

}  // namespace lapclique::linalg

#include "linalg/vector_ops.hpp"

#include <cmath>
#include <stdexcept>

namespace lapclique::linalg {

namespace {
void check_same(std::size_t a, std::size_t b) {
  if (a != b) throw std::invalid_argument("vector_ops: size mismatch");
}
}  // namespace

double dot(std::span<const double> a, std::span<const double> b) {
  check_same(a.size(), b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  double m = 0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_same(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

Vec add(std::span<const double> a, std::span<const double> b) {
  check_same(a.size(), b.size());
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

Vec sub(std::span<const double> a, std::span<const double> b) {
  check_same(a.size(), b.size());
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

Vec scaled(double alpha, std::span<const double> x) {
  Vec r(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) r[i] = alpha * x[i];
  return r;
}

void project_out_ones(std::span<double> x) {
  if (x.empty()) return;
  double mean = 0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

double sum(std::span<const double> x) {
  double s = 0;
  for (double v : x) s += v;
  return s;
}

}  // namespace lapclique::linalg

#include "linalg/vector_ops.hpp"

#include <cmath>
#include <stdexcept>

#include "exec/pool.hpp"

namespace lapclique::linalg {

namespace {
void check_same(std::size_t a, std::size_t b) {
  if (a != b) throw std::invalid_argument("vector_ops: size mismatch");
}
}  // namespace

// Elementwise ops shard over the pool: each index has a fixed arithmetic
// sequence, so any sharding is bit-identical to sequential.  Reductions
// (dot, norm2, sum, project_out_ones) stay sequential on purpose — their
// accumulation order feeds iteration counts and restart boundaries, and the
// determinism contract pins those to the canonical ascending-index order.

double dot(std::span<const double> a, std::span<const double> b) {
  check_same(a.size(), b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  double m = 0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_same(x.size(), y.size());
  exec::parallel_for(static_cast<std::int64_t>(x.size()),
                     [&](std::int64_t b, std::int64_t e) {
                       for (std::int64_t i = b; i < e; ++i) {
                         y[static_cast<std::size_t>(i)] +=
                             alpha * x[static_cast<std::size_t>(i)];
                       }
                     });
}

void scale(double alpha, std::span<double> x) {
  exec::parallel_for(static_cast<std::int64_t>(x.size()),
                     [&](std::int64_t b, std::int64_t e) {
                       for (std::int64_t i = b; i < e; ++i) {
                         x[static_cast<std::size_t>(i)] *= alpha;
                       }
                     });
}

Vec add(std::span<const double> a, std::span<const double> b) {
  check_same(a.size(), b.size());
  Vec r(a.size());
  exec::parallel_for(static_cast<std::int64_t>(a.size()),
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i) {
                         r[static_cast<std::size_t>(i)] =
                             a[static_cast<std::size_t>(i)] +
                             b[static_cast<std::size_t>(i)];
                       }
                     });
  return r;
}

Vec sub(std::span<const double> a, std::span<const double> b) {
  check_same(a.size(), b.size());
  Vec r(a.size());
  exec::parallel_for(static_cast<std::int64_t>(a.size()),
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i) {
                         r[static_cast<std::size_t>(i)] =
                             a[static_cast<std::size_t>(i)] -
                             b[static_cast<std::size_t>(i)];
                       }
                     });
  return r;
}

Vec scaled(double alpha, std::span<const double> x) {
  Vec r(x.size());
  exec::parallel_for(static_cast<std::int64_t>(x.size()),
                     [&](std::int64_t b, std::int64_t e) {
                       for (std::int64_t i = b; i < e; ++i) {
                         r[static_cast<std::size_t>(i)] =
                             alpha * x[static_cast<std::size_t>(i)];
                       }
                     });
  return r;
}

void project_out_ones(std::span<double> x) {
  if (x.empty()) return;
  double mean = 0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

double sum(std::span<const double> x) {
  double s = 0;
  for (double v : x) s += v;
  return s;
}

}  // namespace lapclique::linalg

#include "linalg/jacobi_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lapclique::linalg {

EigenDecomposition jacobi_eigen(int n, std::span<const double> dense, double tol,
                                int max_sweeps) {
  if (static_cast<std::size_t>(n) * static_cast<std::size_t>(n) != dense.size()) {
    throw std::invalid_argument("jacobi_eigen: size mismatch");
  }
  std::vector<double> a(dense.begin(), dense.end());
  std::vector<double> v(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  const auto N = static_cast<std::size_t>(n);
  for (std::size_t i = 0; i < N; ++i) v[i * N + i] = 1.0;

  auto off_norm = [&a, N]() {
    double s = 0;
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t j = i + 1; j < N; ++j) s += a[i * N + j] * a[i * N + j];
    }
    return std::sqrt(2 * s);
  };

  double scale = 0;
  for (std::size_t i = 0; i < N; ++i) scale = std::max(scale, std::abs(a[i * N + i]));
  for (double x : a) scale = std::max(scale, std::abs(x));
  if (scale == 0) scale = 1;

  for (int sweep = 0; sweep < max_sweeps && off_norm() > tol * scale; ++sweep) {
    for (std::size_t p = 0; p < N; ++p) {
      for (std::size_t q = p + 1; q < N; ++q) {
        const double apq = a[p * N + q];
        if (std::abs(apq) <= 1e-300) continue;
        const double app = a[p * N + p];
        const double aqq = a[q * N + q];
        const double theta = (aqq - app) / (2 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < N; ++k) {
          const double akp = a[k * N + p];
          const double akq = a[k * N + q];
          a[k * N + p] = c * akp - s * akq;
          a[k * N + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < N; ++k) {
          const double apk = a[p * N + k];
          const double aqk = a[q * N + k];
          a[p * N + k] = c * apk - s * aqk;
          a[q * N + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < N; ++k) {
          const double vkp = v[p * N + k];
          const double vkq = v[q * N + k];
          v[p * N + k] = c * vkp - s * vkq;
          v[q * N + k] = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition out;
  out.n = n;
  std::vector<int> order(N);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(N);
  for (std::size_t i = 0; i < N; ++i) diag[i] = a[i * N + i];
  std::sort(order.begin(), order.end(),
            [&diag](int x, int y) { return diag[static_cast<std::size_t>(x)] <
                                           diag[static_cast<std::size_t>(y)]; });
  out.values.resize(N);
  out.vectors.resize(N * N);
  for (std::size_t k = 0; k < N; ++k) {
    const auto src = static_cast<std::size_t>(order[k]);
    out.values[k] = diag[src];
    for (std::size_t r = 0; r < N; ++r) out.vectors[k * N + r] = v[src * N + r];
  }
  return out;
}

double generalized_condition_number(const CsrMatrix& a, const CsrMatrix& b,
                                    double kernel_tol) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("generalized_condition_number: size mismatch");
  }
  const int n = a.size();
  const auto N = static_cast<std::size_t>(n);

  // B = Q Lambda Q^T; form B^{+1/2} on the non-kernel part, then the pencil's
  // nonzero eigenvalues are those of M = B^{+/2} A B^{+/2} restricted to the
  // complement of the kernel.
  const EigenDecomposition eb = jacobi_eigen(n, b.to_dense());
  const double lmax = std::max(1.0, std::abs(eb.values.back()));

  std::vector<double> bphalf(N * N, 0.0);  // B^{+1/2}, row-major
  for (std::size_t k = 0; k < N; ++k) {
    const double lam = eb.values[k];
    if (lam <= kernel_tol * lmax) continue;
    const double inv_sqrt = 1.0 / std::sqrt(lam);
    for (std::size_t r = 0; r < N; ++r) {
      const double qr = eb.vectors[k * N + r];
      if (qr == 0) continue;
      for (std::size_t c = 0; c < N; ++c) {
        bphalf[r * N + c] += inv_sqrt * qr * eb.vectors[k * N + c];
      }
    }
  }

  const std::vector<double> ad = a.to_dense();
  // M = bphalf * A * bphalf
  std::vector<double> tmp(N * N, 0.0);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t k = 0; k < N; ++k) {
      const double x = bphalf[i * N + k];
      if (x == 0) continue;
      for (std::size_t j = 0; j < N; ++j) tmp[i * N + j] += x * ad[k * N + j];
    }
  }
  std::vector<double> m(N * N, 0.0);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t k = 0; k < N; ++k) {
      const double x = tmp[i * N + k];
      if (x == 0) continue;
      for (std::size_t j = 0; j < N; ++j) m[i * N + j] += x * bphalf[k * N + j];
    }
  }

  const EigenDecomposition em = jacobi_eigen(n, m);
  const double mmax = std::max(1.0, std::abs(em.values.back()));
  double lo = 0, hi = 0;
  bool found = false;
  for (double lam : em.values) {
    if (lam <= kernel_tol * mmax) continue;
    if (!found) {
      lo = lam;
      found = true;
    }
    hi = lam;
  }
  if (!found) throw std::runtime_error("generalized_condition_number: pencil is zero");
  return hi / lo;
}

}  // namespace lapclique::linalg

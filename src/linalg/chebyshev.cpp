#include "linalg/chebyshev.hpp"

#include <cmath>
#include <stdexcept>

#include "exec/pool.hpp"

namespace lapclique::linalg {

int chebyshev_iteration_bound(double kappa, double eps) {
  if (!(kappa >= 1.0)) throw std::invalid_argument("chebyshev: kappa must be >= 1");
  if (!(eps > 0 && eps <= 0.5)) throw std::invalid_argument("chebyshev: eps in (0, 1/2]");
  return static_cast<int>(std::ceil(std::sqrt(kappa) * std::log(2.0 / eps))) + 1;
}

Vec preconditioned_chebyshev(const ApplyFn& apply_a, const ApplyFn& solve_b,
                             std::span<const double> b, const ChebyshevOptions& opt,
                             ChebyshevStats* stats) {
  // Eigenvalues of B^{-1} A lie in [1/kappa, 1] because A <= B <= kappa A.
  const double lmin = 1.0 / opt.kappa;
  const double lmax = 1.0;
  const double d = (lmax + lmin) / 2.0;
  const double c = (lmax - lmin) / 2.0;

  const int iters = opt.max_iterations > 0 ? opt.max_iterations
                                           : chebyshev_iteration_bound(opt.kappa, opt.eps);

  const std::size_t n = b.size();
  Vec x(n, 0.0);
  Vec r(b.begin(), b.end());
  Vec p(n, 0.0);
  double alpha = 0.0;

  for (int k = 0; k < iters; ++k) {
    Vec z = solve_b(r);
    if (k == 0) {
      p = z;
      alpha = 1.0 / d;
    } else {
      const double beta_num = c * alpha / 2.0;
      const double beta = beta_num * beta_num;
      alpha = 1.0 / (d - beta / alpha);
      exec::parallel_for(static_cast<std::int64_t>(n),
                         [&](std::int64_t lo, std::int64_t hi) {
                           for (std::int64_t i = lo; i < hi; ++i) {
                             const auto iu = static_cast<std::size_t>(i);
                             p[iu] = z[iu] + beta * p[iu];
                           }
                         });
    }
    axpy(alpha, p, x);
    Vec ap = apply_a(p);
    axpy(-alpha, ap, r);
    if (stats != nullptr && opt.record_trace) {
      stats->residual_trace.push_back(norm2(r));
    }
    if (stats != nullptr) stats->iterations = k + 1;
  }
  if (stats != nullptr) stats->final_residual = norm2(r);
  obs::count(opt.ledger, "chebyshev_iterations", iters);
  return x;
}

}  // namespace lapclique::linalg

#include "linalg/chebyshev.hpp"

#include <cmath>
#include <stdexcept>

#include "exec/pool.hpp"

namespace lapclique::linalg {

int chebyshev_iteration_bound(double kappa, double eps) {
  if (!(kappa >= 1.0)) throw std::invalid_argument("chebyshev: kappa must be >= 1");
  if (!(eps > 0 && eps <= 0.5)) throw std::invalid_argument("chebyshev: eps in (0, 1/2]");
  return static_cast<int>(std::ceil(std::sqrt(kappa) * std::log(2.0 / eps))) + 1;
}

Vec preconditioned_chebyshev(const ApplyFn& apply_a, const ApplyFn& solve_b,
                             std::span<const double> b, const ChebyshevOptions& opt,
                             ChebyshevStats* stats) {
  // Eigenvalues of B^{-1} A lie in [1/kappa, 1] because A <= B <= kappa A.
  const double lmin = 1.0 / opt.kappa;
  const double lmax = 1.0;
  const double d = (lmax + lmin) / 2.0;
  const double c = (lmax - lmin) / 2.0;

  const int iters = opt.max_iterations > 0 ? opt.max_iterations
                                           : chebyshev_iteration_bound(opt.kappa, opt.eps);

  const std::size_t n = b.size();
  Vec x(n, 0.0);
  Vec r(b.begin(), b.end());
  Vec p(n, 0.0);
  double alpha = 0.0;

  for (int k = 0; k < iters; ++k) {
    Vec z = solve_b(r);
    if (k == 0) {
      p = z;
      alpha = 1.0 / d;
      axpy(alpha, p, x);
    } else {
      const double beta_num = c * alpha / 2.0;
      const double beta = beta_num * beta_num;
      alpha = 1.0 / (d - beta / alpha);
      if (opt.a_matrix != nullptr) {
        // Fused triad: the p recurrence and the x accumulation share one
        // pass.  Per element the two statements are exactly the unfused
        // pair below, so fusing cannot change a bit.
        const double a = alpha;
        exec::parallel_for(static_cast<std::int64_t>(n),
                           [&](std::int64_t lo, std::int64_t hi) {
                             for (std::int64_t i = lo; i < hi; ++i) {
                               const auto iu = static_cast<std::size_t>(i);
                               p[iu] = z[iu] + beta * p[iu];
                               x[iu] += a * p[iu];
                             }
                           });
      } else {
        exec::parallel_for(static_cast<std::int64_t>(n),
                           [&](std::int64_t lo, std::int64_t hi) {
                             for (std::int64_t i = lo; i < hi; ++i) {
                               const auto iu = static_cast<std::size_t>(i);
                               p[iu] = z[iu] + beta * p[iu];
                             }
                           });
        axpy(alpha, p, x);
      }
    }
    if (opt.a_matrix != nullptr) {
      // r -= alpha * (A p) without materializing ap.
      opt.a_matrix->multiply_axpy_into(-alpha, p, r);
    } else {
      Vec ap = apply_a(p);
      axpy(-alpha, ap, r);
    }
    if (stats != nullptr && opt.record_trace) {
      stats->residual_trace.push_back(norm2(r));
    }
    if (stats != nullptr) stats->iterations = k + 1;
  }
  if (stats != nullptr) stats->final_residual = norm2(r);
  obs::count(opt.ledger, "chebyshev_iterations", iters);
  return x;
}

std::vector<Vec> preconditioned_chebyshev_block(const BlockApplyFn& apply_a,
                                                const BlockApplyFn& solve_b,
                                                std::span<const Vec> b,
                                                const ChebyshevOptions& opt,
                                                std::vector<ChebyshevStats>* stats) {
  const std::size_t k = b.size();
  if (stats != nullptr) {
    stats->clear();
    stats->resize(k);
  }
  if (k == 0) return {};

  const double lmin = 1.0 / opt.kappa;
  const double lmax = 1.0;
  const double d = (lmax + lmin) / 2.0;
  const double c = (lmax - lmin) / 2.0;
  const int iters = opt.max_iterations > 0 ? opt.max_iterations
                                           : chebyshev_iteration_bound(opt.kappa, opt.eps);

  const std::size_t n = b[0].size();
  std::vector<Vec> x(k, Vec(n, 0.0));
  std::vector<Vec> r(b.begin(), b.end());
  std::vector<Vec> p(k, Vec(n, 0.0));
  double alpha = 0.0;

  // The scalar iteration's alpha/beta sequence is a pure function of the
  // iteration index, so every column shares it; each elementwise update and
  // per-column reduction below repeats the scalar kernel's arithmetic
  // exactly, which is what makes column c bit-identical to a standalone
  // preconditioned_chebyshev(b[c]).
  for (int it = 0; it < iters; ++it) {
    std::vector<Vec> z = solve_b(r);
    if (it == 0) {
      p = std::move(z);
      alpha = 1.0 / d;
      for (std::size_t col = 0; col < k; ++col) axpy(alpha, p[col], x[col]);
    } else {
      const double beta_num = c * alpha / 2.0;
      const double beta = beta_num * beta_num;
      alpha = 1.0 / (d - beta / alpha);
      if (opt.a_matrix != nullptr) {
        // Fused triad, block form: per column the p/x statements are the
        // unfused pair below, element for element.
        const double a = alpha;
        exec::parallel_for(static_cast<std::int64_t>(n),
                           [&](std::int64_t lo, std::int64_t hi) {
                             for (std::size_t col = 0; col < k; ++col) {
                               double* pc = p[col].data();
                               double* xc = x[col].data();
                               const double* zc = z[col].data();
                               for (std::int64_t i = lo; i < hi; ++i) {
                                 const auto iu = static_cast<std::size_t>(i);
                                 pc[iu] = zc[iu] + beta * pc[iu];
                                 xc[iu] += a * pc[iu];
                               }
                             }
                           });
      } else {
        exec::parallel_for(static_cast<std::int64_t>(n),
                           [&](std::int64_t lo, std::int64_t hi) {
                             for (std::size_t col = 0; col < k; ++col) {
                               double* pc = p[col].data();
                               const double* zc = z[col].data();
                               for (std::int64_t i = lo; i < hi; ++i) {
                                 const auto iu = static_cast<std::size_t>(i);
                                 pc[iu] = zc[iu] + beta * pc[iu];
                               }
                             }
                           });
        for (std::size_t col = 0; col < k; ++col) axpy(alpha, p[col], x[col]);
      }
    }
    if (opt.a_matrix != nullptr) {
      opt.a_matrix->multiply_block_axpy_into(-alpha, p, r);
    } else {
      std::vector<Vec> ap = apply_a(p);
      for (std::size_t col = 0; col < k; ++col) axpy(-alpha, ap[col], r[col]);
    }
    if (stats != nullptr) {
      for (std::size_t col = 0; col < k; ++col) {
        if (opt.record_trace) (*stats)[col].residual_trace.push_back(norm2(r[col]));
        (*stats)[col].iterations = it + 1;
      }
    }
  }
  if (stats != nullptr) {
    for (std::size_t col = 0; col < k; ++col) {
      (*stats)[col].final_residual = norm2(r[col]);
    }
  }
  obs::count(opt.ledger, "chebyshev_iterations",
             static_cast<std::int64_t>(iters) * static_cast<std::int64_t>(k));
  return x;
}

}  // namespace lapclique::linalg

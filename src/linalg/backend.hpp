// The linalg::Backend seam: one switch (`auto | dense | sparse`) deciding
// which LDL^T path factors a Laplacian, selected per run via
// Runtime::numerics (core/runtime.hpp) and reported back through
// FactorStats → LaplacianSolveStats / RunInfo so traces, benches, and golden
// tests can pin which kernel actually ran.
//
// Resolution contract:
//   * kDense / kSparse are explicit and always honored.
//   * kAuto resolves from (n, nnz) alone — a pure function, so the choice is
//     deterministic and, crucially, environment-free at this layer.  The
//     LAPCLIQUE_NUMERICS environment variable enters only through
//     default_backend(), which seeds Runtime::numerics — mirroring how
//     LAPCLIQUE_ROUTING seeds Runtime::routing_mode while direct Network
//     construction stays env-independent.  The serve daemon therefore never
//     inherits a backend from its environment (docs/SERVING.md contract);
//     it takes one from --numerics or per-request fields.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "linalg/cholesky.hpp"
#include "linalg/sparse_cholesky.hpp"

namespace lapclique::linalg {

enum class Backend {
  kAuto = 0,   ///< resolve from instance size/sparsity (resolve_backend)
  kDense = 1,  ///< dense LDL^T (linalg/cholesky)
  kSparse = 2  ///< RCM-ordered sparse LDL^T (linalg/sparse_cholesky)
};

[[nodiscard]] const char* to_string(Backend b);

/// Parses "auto" | "dense" | "sparse"; std::nullopt on anything else.
[[nodiscard]] std::optional<Backend> backend_from_string(std::string_view s);

/// Process default: the LAPCLIQUE_NUMERICS environment variable (read once),
/// else kAuto.  Seeds Runtime::numerics only — factorization call sites must
/// not consult this directly (see the header comment).
[[nodiscard]] Backend default_backend();

/// Resolves kAuto for an n-vertex Laplacian with nnz stored entries: sparse
/// once the instance is big enough that the O(n^3) dense factor loses and
/// sparse enough that fill-in stays bounded.  Explicit requests pass through.
[[nodiscard]] Backend resolve_backend(Backend requested, int n, std::int64_t nnz);

/// What a factorization did, surfaced through solver stats and RunInfo.
struct FactorStats {
  Backend requested = Backend::kAuto;  ///< what the caller asked for
  Backend chosen = Backend::kDense;    ///< what actually ran
  int n = 0;                           ///< matrix dimension
  std::int64_t nnz = 0;                ///< stored entries of the Laplacian
  std::int64_t fill_nnz = 0;           ///< nonzeros in the factor (diag incl.)
};

/// The pluggable Laplacian pseudoinverse factor: dispatches between
/// linalg::LaplacianFactor (dense) and linalg::SparseLaplacianFactor by the
/// resolved backend.  Both wrappers share the grounding/projection
/// arithmetic, so swapping backends changes substitution bits only — round
/// counts stay pinned by the golden tests under either choice.
class BackendLaplacianFactor {
 public:
  BackendLaplacianFactor() = default;

  static BackendLaplacianFactor factor(const CsrMatrix& laplacian,
                                       Backend requested = Backend::kAuto);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] const FactorStats& stats() const { return stats_; }
  [[nodiscard]] Backend chosen() const { return stats_.chosen; }

  /// x = L^+ b.
  [[nodiscard]] Vec solve(std::span<const double> b) const;

  /// Multi-RHS pseudoinverse action; column c bit-identical to solve(b[c]).
  [[nodiscard]] std::vector<Vec> solve_block(std::span<const Vec> b) const;

 private:
  int n_ = 0;
  FactorStats stats_;
  // Exactly one is populated (the other stays empty); dispatch is a branch
  // on stats_.chosen, fixed at factor time.
  LaplacianFactor dense_;
  SparseLaplacianFactor sparse_;
};

}  // namespace lapclique::linalg

// Symmetric Lanczos iteration with full reorthogonalization — a sharper
// deterministic estimator for the extreme eigenvalues of a linear operator
// than the power iteration, used to certify solver kappa estimates and by
// tests that need spectral ranges of operators too large for Jacobi.
//
// Deterministic: the start vector is derived from index hashing, so every
// run reproduces bit for bit (matching the library-wide policy).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace lapclique::linalg {

struct LanczosOptions {
  int max_iterations = 64;
  /// Stop when the Krylov residual (beta) falls below this.
  double beta_tol = 1e-10;
  std::uint64_t deterministic_salt = 0x1a2cULL;
  /// Optional subspace to project out at every step (e.g. the all-ones
  /// kernel of a Laplacian); may be empty.
  std::vector<Vec> deflate;
};

struct LanczosResult {
  std::vector<double> eigenvalues;  ///< Ritz values, ascending
  int iterations = 0;
};

/// Ritz values of the symmetric operator `apply` on R^n (restricted to the
/// complement of the deflation subspace).  The extreme Ritz values converge
/// to the extreme eigenvalues.
LanczosResult lanczos(const std::function<Vec(std::span<const double>)>& apply,
                      int n, const LanczosOptions& opt = {});

/// Eigenvalues of a symmetric tridiagonal matrix (diag alpha, off-diag
/// beta), via the QL-implicit algorithm.  Exposed for tests.
std::vector<double> tridiagonal_eigenvalues(std::vector<double> alpha,
                                            std::vector<double> beta);

}  // namespace lapclique::linalg

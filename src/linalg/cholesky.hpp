// Dense LDL^T factorization for symmetric positive (semi-)definite systems,
// plus a Laplacian-aware wrapper that handles the all-ones kernel by
// grounding one vertex per connected component.
//
// The congested-clique Laplacian solver (Theorem 1.1) solves systems in the
// *sparsifier* L_H internally at every node; since H is globally known and
// has O(n log n) edges this dense factorization is the "internal computation"
// the model charges zero rounds for.
//
// MIGRATION (sparse-first numerics): constructing LaplacianFactor directly is
// deprecated for solver code.  Factor through linalg::BackendLaplacianFactor
// (linalg/backend.hpp), which picks dense LDL^T or the RCM-ordered sparse
// LDL^T per the Runtime::numerics / LaplacianSolverOptions::backend request
// and reports FactorStats.  This header stays as the dense backend's
// implementation and as a compat shim for existing callers; see
// docs/PERFORMANCE.md ("Numerics backends") for the migration contract.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"

namespace lapclique::linalg {

/// Dense LDL^T of an SPD matrix (no pivoting; the matrices we factor are
/// diagonally dominant).  Throws if a pivot collapses below `min_pivot`.
class DenseLdlt {
 public:
  DenseLdlt() = default;

  /// `dense` is row-major n*n, symmetric.
  static DenseLdlt factor(int n, std::span<const double> dense,
                          double min_pivot = 1e-300);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] Vec solve(std::span<const double> b) const;
  void solve_inplace(std::span<double> x) const;

  /// Multi-RHS triangular solves: one walk over the factor serves every
  /// column.  The row/block schedule is exactly solve_inplace's, with an
  /// inner loop over columns, so each column's floating-point reduction
  /// order — and therefore its bits — matches a standalone solve.
  void solve_block_inplace(std::span<Vec> xs) const;

 private:
  int n_ = 0;
  std::vector<double> l_;   ///< unit lower triangle, row-major packed n*n
  std::vector<double> lt_;  ///< transpose of l_ (row i = column i of L), so
                            ///< backward substitution streams contiguously
  std::vector<double> d_;   ///< diagonal of D
};

/// Solves Laplacian systems L x = b exactly (up to fp error) for a connected
/// or disconnected Laplacian: per component, one vertex is grounded, the
/// reduced SPD system is LDL^T-factored, and inputs/outputs are projected so
/// the result is the pseudoinverse action x = L^+ b.
class LaplacianFactor {
 public:
  LaplacianFactor() = default;
  static LaplacianFactor factor(const CsrMatrix& laplacian);

  [[nodiscard]] int size() const { return n_; }

  /// x = L^+ b.  (b is projected onto the range of L per component first.)
  [[nodiscard]] Vec solve(std::span<const double> b) const;

  /// Multi-RHS pseudoinverse action: column c is bit-identical to
  /// solve(b[c]) — projection, substitution, and normalization all run the
  /// per-column arithmetic of the scalar path while sharing the factor walk.
  [[nodiscard]] std::vector<Vec> solve_block(std::span<const Vec> b) const;

  [[nodiscard]] int num_components() const { return num_components_; }
  [[nodiscard]] std::span<const int> component_of() const { return comp_; }

 private:
  int n_ = 0;
  int num_components_ = 0;
  std::vector<int> comp_;      ///< component id per vertex
  std::vector<int> grounded_;  ///< one grounded vertex per component
  DenseLdlt ldlt_;             ///< factor of L with grounded rows/cols pinned
};

}  // namespace lapclique::linalg

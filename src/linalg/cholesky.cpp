#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace lapclique::linalg {

DenseLdlt DenseLdlt::factor(int n, std::span<const double> dense, double min_pivot) {
  if (static_cast<std::size_t>(n) * static_cast<std::size_t>(n) != dense.size()) {
    throw std::invalid_argument("DenseLdlt: size mismatch");
  }
  DenseLdlt f;
  f.n_ = n;
  f.l_.assign(dense.begin(), dense.end());
  f.d_.assign(static_cast<std::size_t>(n), 0.0);
  auto at = [&f, n](int r, int c) -> double& {
    return f.l_[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(c)];
  };
  for (int j = 0; j < n; ++j) {
    double dj = at(j, j);
    for (int k = 0; k < j; ++k) dj -= at(j, k) * at(j, k) * f.d_[static_cast<std::size_t>(k)];
    if (!(std::abs(dj) > min_pivot)) {
      throw std::runtime_error("DenseLdlt: pivot collapsed; matrix not SPD enough");
    }
    f.d_[static_cast<std::size_t>(j)] = dj;
    for (int i = j + 1; i < n; ++i) {
      double lij = at(i, j);
      for (int k = 0; k < j; ++k) {
        lij -= at(i, k) * at(j, k) * f.d_[static_cast<std::size_t>(k)];
      }
      at(i, j) = lij / dj;
    }
  }
  return f;
}

Vec DenseLdlt::solve(std::span<const double> b) const {
  Vec x(b.begin(), b.end());
  solve_inplace(x);
  return x;
}

void DenseLdlt::solve_inplace(std::span<double> x) const {
  if (static_cast<int>(x.size()) != n_) {
    throw std::invalid_argument("DenseLdlt::solve: size mismatch");
  }
  const auto n = static_cast<std::size_t>(n_);
  // Forward: L y = b
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_[i * n + k] * x[k];
    x[i] = s;
  }
  // Diagonal
  for (std::size_t i = 0; i < n; ++i) x[i] /= d_[i];
  // Backward: L^T x = y
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_[k * n + ii] * x[k];
    x[ii] = s;
  }
}

LaplacianFactor LaplacianFactor::factor(const CsrMatrix& laplacian) {
  LaplacianFactor f;
  const int n = laplacian.size();
  f.n_ = n;
  f.comp_.assign(static_cast<std::size_t>(n), -1);

  // Components via DFS over the sparsity pattern.
  const auto rowptr = laplacian.row_ptr();
  const auto colidx = laplacian.col_idx();
  int comps = 0;
  std::vector<int> stack;
  for (int s = 0; s < n; ++s) {
    if (f.comp_[static_cast<std::size_t>(s)] != -1) continue;
    const int c = comps++;
    stack.push_back(s);
    f.comp_[static_cast<std::size_t>(s)] = c;
    f.grounded_.push_back(s);
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int k = rowptr[static_cast<std::size_t>(v)];
           k < rowptr[static_cast<std::size_t>(v) + 1]; ++k) {
        const int u = colidx[static_cast<std::size_t>(k)];
        if (f.comp_[static_cast<std::size_t>(u)] == -1) {
          f.comp_[static_cast<std::size_t>(u)] = c;
          stack.push_back(u);
        }
      }
    }
  }
  f.num_components_ = comps;

  // Pin grounded rows/cols to identity; the result is SPD.
  std::vector<double> dense = laplacian.to_dense();
  std::vector<char> is_grounded(static_cast<std::size_t>(n), 0);
  for (int g : f.grounded_) is_grounded[static_cast<std::size_t>(g)] = 1;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const bool gr = is_grounded[static_cast<std::size_t>(r)] != 0;
      const bool gc = is_grounded[static_cast<std::size_t>(c)] != 0;
      if (gr || gc) {
        dense[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(c)] = (r == c) ? 1.0 : 0.0;
      }
    }
  }
  f.ldlt_ = DenseLdlt::factor(n, dense);
  return f;
}

Vec LaplacianFactor::solve(std::span<const double> b) const {
  if (static_cast<int>(b.size()) != n_) {
    throw std::invalid_argument("LaplacianFactor::solve: size mismatch");
  }
  // Project b onto range(L): per component, subtract the mean.
  std::vector<double> mean(static_cast<std::size_t>(num_components_), 0.0);
  std::vector<int> count(static_cast<std::size_t>(num_components_), 0);
  for (int v = 0; v < n_; ++v) {
    mean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])] +=
        b[static_cast<std::size_t>(v)];
    ++count[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
  }
  for (int c = 0; c < num_components_; ++c) {
    mean[static_cast<std::size_t>(c)] /= static_cast<double>(count[static_cast<std::size_t>(c)]);
  }
  Vec rhs(b.begin(), b.end());
  for (int v = 0; v < n_; ++v) {
    rhs[static_cast<std::size_t>(v)] -= mean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
  }
  for (int g : grounded_) rhs[static_cast<std::size_t>(g)] = 0.0;

  Vec x = ldlt_.solve(rhs);

  // Normalize: per component, make the solution mean-zero (pseudoinverse).
  std::vector<double> xmean(static_cast<std::size_t>(num_components_), 0.0);
  for (int v = 0; v < n_; ++v) {
    xmean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])] +=
        x[static_cast<std::size_t>(v)];
  }
  for (int c = 0; c < num_components_; ++c) {
    xmean[static_cast<std::size_t>(c)] /= static_cast<double>(count[static_cast<std::size_t>(c)]);
  }
  for (int v = 0; v < n_; ++v) {
    x[static_cast<std::size_t>(v)] -= xmean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
  }
  return x;
}

}  // namespace lapclique::linalg

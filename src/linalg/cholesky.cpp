#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/pool.hpp"

namespace lapclique::linalg {

namespace {

/// Column-block width for the blocked triangular solves.  A pure constant:
/// block boundaries must not depend on the thread count (exec/pool.hpp).
constexpr std::int64_t kSolveBlock = 128;

/// Minimum flop count before a loop goes through the pool; below this the
/// dispatch overhead dominates.  Depends only on problem size, so the
/// sequential/parallel decision is itself deterministic.
constexpr std::int64_t kParallelFlops = 16384;

}  // namespace

DenseLdlt DenseLdlt::factor(int n, std::span<const double> dense, double min_pivot) {
  if (static_cast<std::size_t>(n) * static_cast<std::size_t>(n) != dense.size()) {
    throw std::invalid_argument("DenseLdlt: size mismatch");
  }
  DenseLdlt f;
  f.n_ = n;
  f.l_.assign(dense.begin(), dense.end());
  f.d_.assign(static_cast<std::size_t>(n), 0.0);
  const auto nn = static_cast<std::size_t>(n);
  double* l = f.l_.data();

  // Left-looking LDL^T.  For a fixed column j the updates of rows
  // i = j+1..n-1 are independent and each runs the exact arithmetic the
  // sequential loop would, so sharding rows over the pool is bit-identical
  // to a single-threaded factorization.
  for (int j = 0; j < n; ++j) {
    const std::size_t ju = static_cast<std::size_t>(j);
    double dj = l[ju * nn + ju];
    for (std::size_t k = 0; k < ju; ++k) {
      dj -= l[ju * nn + k] * l[ju * nn + k] * f.d_[k];
    }
    if (!(std::abs(dj) > min_pivot)) {
      throw std::runtime_error("DenseLdlt: pivot collapsed; matrix not SPD enough");
    }
    f.d_[ju] = dj;
    const std::int64_t tail = n - j - 1;
    const auto row_update = [l, nn, ju, dj, d = f.d_.data()](std::int64_t b,
                                                             std::int64_t e) {
      for (std::int64_t t = b; t < e; ++t) {
        const std::size_t i = ju + 1 + static_cast<std::size_t>(t);
        double lij = l[i * nn + ju];
        const double* li = l + i * nn;
        const double* lj = l + ju * nn;
        for (std::size_t k = 0; k < ju; ++k) lij -= li[k] * lj[k] * d[k];
        l[i * nn + ju] = lij / dj;
      }
    };
    if (tail * static_cast<std::int64_t>(ju) >= kParallelFlops) {
      // Shard so each task carries a few thousand multiply-adds.
      const std::int64_t grain =
          std::max<std::int64_t>(1, kParallelFlops / std::max<std::int64_t>(1, ju));
      exec::parallel_for(tail, grain, row_update);
    } else {
      row_update(0, tail);
    }
  }

  // Transposed copy of the strictly-lower triangle (row i of lt_ holds
  // column i of L), so backward substitution streams memory contiguously.
  f.lt_.assign(nn * nn, 0.0);
  double* lt = f.lt_.data();
  exec::parallel_for(n, 64, [l, lt, nn](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      for (std::size_t k = iu + 1; k < nn; ++k) lt[iu * nn + k] = l[k * nn + iu];
    }
  });
  return f;
}

void DenseLdlt::solve_inplace(std::span<double> x) const {
  if (static_cast<int>(x.size()) != n_) {
    throw std::invalid_argument("DenseLdlt::solve: size mismatch");
  }
  const auto n = static_cast<std::size_t>(n_);
  const double* l = l_.data();
  const double* lt = lt_.data();
  double* xs = x.data();

  // Both substitutions run the same blocked schedule at every thread count:
  // a sequential triangular solve on the diagonal block, then a fan-out
  // update of the remaining rows sharded over the pool.  Each row's
  // accumulation order is fixed by the block walk (never by the thread
  // count), which is what makes the solver bit-reproducible in parallel.

  // Forward: L y = b.  Row i accumulates columns in ascending order —
  // identical to the classic row-oriented loop.
  for (std::size_t c0 = 0; c0 < n; c0 += kSolveBlock) {
    const std::size_t c1 = std::min(n, c0 + static_cast<std::size_t>(kSolveBlock));
    for (std::size_t i = c0; i < c1; ++i) {
      double s = xs[i];
      for (std::size_t k = c0; k < i; ++k) s -= l[i * n + k] * xs[k];
      xs[i] = s;
    }
    const std::int64_t tail = static_cast<std::int64_t>(n - c1);
    const auto update = [l, xs, n, c0, c1](std::int64_t b, std::int64_t e) {
      for (std::int64_t t = b; t < e; ++t) {
        const std::size_t i = c1 + static_cast<std::size_t>(t);
        double s = xs[i];
        for (std::size_t k = c0; k < c1; ++k) s -= l[i * n + k] * xs[k];
        xs[i] = s;
      }
    };
    if (tail * static_cast<std::int64_t>(c1 - c0) >= kParallelFlops) {
      exec::parallel_for(tail, std::max<std::int64_t>(1, kParallelFlops / kSolveBlock),
                         update);
    } else {
      update(0, tail);
    }
  }

  // Diagonal.
  for (std::size_t i = 0; i < n; ++i) xs[i] /= d_[i];

  // Backward: L^T x = y, walking column blocks from the bottom.  Row i first
  // absorbs the already-final entries of later blocks (ascending k), then
  // the in-block tail — the fixed canonical order for this kernel.
  const std::size_t nblocks = (n + kSolveBlock - 1) / kSolveBlock;
  for (std::size_t blk = nblocks; blk-- > 0;) {
    const std::size_t c0 = blk * static_cast<std::size_t>(kSolveBlock);
    const std::size_t c1 = std::min(n, c0 + static_cast<std::size_t>(kSolveBlock));
    const std::int64_t rows = static_cast<std::int64_t>(c1 - c0);
    const auto absorb = [lt, xs, n, c0, c1](std::int64_t b, std::int64_t e) {
      for (std::int64_t t = b; t < e; ++t) {
        const std::size_t i = c0 + static_cast<std::size_t>(t);
        double s = xs[i];
        for (std::size_t k = c1; k < n; ++k) s -= lt[i * n + k] * xs[k];
        xs[i] = s;
      }
    };
    const std::int64_t absorb_flops = rows * static_cast<std::int64_t>(n - c1);
    if (absorb_flops >= kParallelFlops) {
      exec::parallel_for(
          rows,
          std::max<std::int64_t>(1, kParallelFlops /
                                        std::max<std::int64_t>(1, n - c1)),
          absorb);
    } else {
      absorb(0, rows);
    }
    for (std::size_t ii = c1; ii-- > c0;) {
      double s = xs[ii];
      for (std::size_t k = ii + 1; k < c1; ++k) s -= lt[ii * n + k] * xs[k];
      xs[ii] = s;
      if (ii == 0) break;  // size_t wrap guard when c0 == 0
    }
  }
}

Vec DenseLdlt::solve(std::span<const double> b) const {
  Vec x(b.begin(), b.end());
  solve_inplace(x);
  return x;
}

void DenseLdlt::solve_block_inplace(std::span<Vec> xs) const {
  const std::size_t ncols = xs.size();
  if (ncols == 0) return;
  if (ncols == 1) {
    solve_inplace(xs[0]);
    return;
  }
  for (const Vec& col : xs) {
    if (static_cast<int>(col.size()) != n_) {
      throw std::invalid_argument("DenseLdlt::solve_block: size mismatch");
    }
  }
  const auto n = static_cast<std::size_t>(n_);
  const double* l = l_.data();
  const double* lt = lt_.data();
  // Column pointers so the inner loops index xv[c][i] without bounds checks.
  std::vector<double*> xv(ncols);
  for (std::size_t c = 0; c < ncols; ++c) xv[c] = xs[c].data();

  // The schedule below is solve_inplace's blocked walk verbatim; every
  // accumulation gains an inner loop over RHS columns, so the factor row is
  // read once per block step while each column's reduction order (ascending
  // k within the block walk) is unchanged from the scalar kernel.

  // Forward: L y = b.
  for (std::size_t c0 = 0; c0 < n; c0 += kSolveBlock) {
    const std::size_t c1 = std::min(n, c0 + static_cast<std::size_t>(kSolveBlock));
    for (std::size_t i = c0; i < c1; ++i) {
      for (std::size_t c = 0; c < ncols; ++c) {
        double s = xv[c][i];
        for (std::size_t k = c0; k < i; ++k) s -= l[i * n + k] * xv[c][k];
        xv[c][i] = s;
      }
    }
    const std::int64_t tail = static_cast<std::int64_t>(n - c1);
    const auto update = [l, &xv, ncols, n, c0, c1](std::int64_t b, std::int64_t e) {
      for (std::int64_t t = b; t < e; ++t) {
        const std::size_t i = c1 + static_cast<std::size_t>(t);
        for (std::size_t c = 0; c < ncols; ++c) {
          double s = xv[c][i];
          for (std::size_t k = c0; k < c1; ++k) s -= l[i * n + k] * xv[c][k];
          xv[c][i] = s;
        }
      }
    };
    if (tail * static_cast<std::int64_t>(c1 - c0) >= kParallelFlops) {
      exec::parallel_for(tail, std::max<std::int64_t>(1, kParallelFlops / kSolveBlock),
                         update);
    } else {
      update(0, tail);
    }
  }

  // Diagonal.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < ncols; ++c) xv[c][i] /= d_[i];
  }

  // Backward: L^T x = y.
  const std::size_t nblocks = (n + kSolveBlock - 1) / kSolveBlock;
  for (std::size_t blk = nblocks; blk-- > 0;) {
    const std::size_t c0 = blk * static_cast<std::size_t>(kSolveBlock);
    const std::size_t c1 = std::min(n, c0 + static_cast<std::size_t>(kSolveBlock));
    const std::int64_t rows = static_cast<std::int64_t>(c1 - c0);
    const auto absorb = [lt, &xv, ncols, n, c0, c1](std::int64_t b, std::int64_t e) {
      for (std::int64_t t = b; t < e; ++t) {
        const std::size_t i = c0 + static_cast<std::size_t>(t);
        for (std::size_t c = 0; c < ncols; ++c) {
          double s = xv[c][i];
          for (std::size_t k = c1; k < n; ++k) s -= lt[i * n + k] * xv[c][k];
          xv[c][i] = s;
        }
      }
    };
    const std::int64_t absorb_flops = rows * static_cast<std::int64_t>(n - c1);
    if (absorb_flops >= kParallelFlops) {
      exec::parallel_for(
          rows,
          std::max<std::int64_t>(1, kParallelFlops /
                                        std::max<std::int64_t>(1, n - c1)),
          absorb);
    } else {
      absorb(0, rows);
    }
    for (std::size_t ii = c1; ii-- > c0;) {
      for (std::size_t c = 0; c < ncols; ++c) {
        double s = xv[c][ii];
        for (std::size_t k = ii + 1; k < c1; ++k) s -= lt[ii * n + k] * xv[c][k];
        xv[c][ii] = s;
      }
      if (ii == 0) break;  // size_t wrap guard when c0 == 0
    }
  }
}

LaplacianFactor LaplacianFactor::factor(const CsrMatrix& laplacian) {
  LaplacianFactor f;
  const int n = laplacian.size();
  f.n_ = n;
  f.comp_.assign(static_cast<std::size_t>(n), -1);

  // Components via DFS over the sparsity pattern.
  const auto rowptr = laplacian.row_ptr();
  const auto colidx = laplacian.col_idx();
  int comps = 0;
  std::vector<int> stack;
  for (int s = 0; s < n; ++s) {
    if (f.comp_[static_cast<std::size_t>(s)] != -1) continue;
    const int c = comps++;
    stack.push_back(s);
    f.comp_[static_cast<std::size_t>(s)] = c;
    f.grounded_.push_back(s);
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int k = rowptr[static_cast<std::size_t>(v)];
           k < rowptr[static_cast<std::size_t>(v) + 1]; ++k) {
        const int u = colidx[static_cast<std::size_t>(k)];
        if (f.comp_[static_cast<std::size_t>(u)] == -1) {
          f.comp_[static_cast<std::size_t>(u)] = c;
          stack.push_back(u);
        }
      }
    }
  }
  f.num_components_ = comps;

  // Pin grounded rows/cols to identity; the result is SPD.  Row-sharded:
  // each row is written by exactly one task.
  std::vector<double> dense = laplacian.to_dense();
  std::vector<char> is_grounded(static_cast<std::size_t>(n), 0);
  for (int g : f.grounded_) is_grounded[static_cast<std::size_t>(g)] = 1;
  exec::parallel_for(n, 64, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t r = b; r < e; ++r) {
      const auto ru = static_cast<std::size_t>(r);
      const bool gr = is_grounded[ru] != 0;
      double* row = dense.data() + ru * static_cast<std::size_t>(n);
      for (int c = 0; c < n; ++c) {
        if (gr || is_grounded[static_cast<std::size_t>(c)] != 0) {
          row[static_cast<std::size_t>(c)] = (static_cast<int>(r) == c) ? 1.0 : 0.0;
        }
      }
    }
  });
  f.ldlt_ = DenseLdlt::factor(n, dense);
  return f;
}

Vec LaplacianFactor::solve(std::span<const double> b) const {
  if (static_cast<int>(b.size()) != n_) {
    throw std::invalid_argument("LaplacianFactor::solve: size mismatch");
  }
  // Project b onto range(L): per component, subtract the mean.
  std::vector<double> mean(static_cast<std::size_t>(num_components_), 0.0);
  std::vector<int> count(static_cast<std::size_t>(num_components_), 0);
  for (int v = 0; v < n_; ++v) {
    mean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])] +=
        b[static_cast<std::size_t>(v)];
    ++count[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
  }
  for (int c = 0; c < num_components_; ++c) {
    mean[static_cast<std::size_t>(c)] /= static_cast<double>(count[static_cast<std::size_t>(c)]);
  }
  Vec rhs(b.begin(), b.end());
  for (int v = 0; v < n_; ++v) {
    rhs[static_cast<std::size_t>(v)] -= mean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
  }
  for (int g : grounded_) rhs[static_cast<std::size_t>(g)] = 0.0;

  Vec x = ldlt_.solve(rhs);

  // Normalize: per component, make the solution mean-zero (pseudoinverse).
  std::vector<double> xmean(static_cast<std::size_t>(num_components_), 0.0);
  for (int v = 0; v < n_; ++v) {
    xmean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])] +=
        x[static_cast<std::size_t>(v)];
  }
  for (int c = 0; c < num_components_; ++c) {
    xmean[static_cast<std::size_t>(c)] /= static_cast<double>(count[static_cast<std::size_t>(c)]);
  }
  for (int v = 0; v < n_; ++v) {
    x[static_cast<std::size_t>(v)] -= xmean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
  }
  return x;
}

std::vector<Vec> LaplacianFactor::solve_block(std::span<const Vec> b) const {
  const std::size_t ncols = b.size();
  std::vector<Vec> xs(ncols);
  if (ncols == 0) return xs;
  for (const Vec& col : b) {
    if (static_cast<int>(col.size()) != n_) {
      throw std::invalid_argument("LaplacianFactor::solve_block: size mismatch");
    }
  }
  // Projection and normalization are per-column reductions over the same
  // vertex order as solve(); the substitution itself is the blocked kernel.
  for (std::size_t c = 0; c < ncols; ++c) {
    std::vector<double> mean(static_cast<std::size_t>(num_components_), 0.0);
    std::vector<int> count(static_cast<std::size_t>(num_components_), 0);
    for (int v = 0; v < n_; ++v) {
      mean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])] +=
          b[c][static_cast<std::size_t>(v)];
      ++count[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
    }
    for (int cc = 0; cc < num_components_; ++cc) {
      mean[static_cast<std::size_t>(cc)] /=
          static_cast<double>(count[static_cast<std::size_t>(cc)]);
    }
    Vec rhs(b[c].begin(), b[c].end());
    for (int v = 0; v < n_; ++v) {
      rhs[static_cast<std::size_t>(v)] -=
          mean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
    }
    for (int g : grounded_) rhs[static_cast<std::size_t>(g)] = 0.0;
    xs[c] = std::move(rhs);
  }

  ldlt_.solve_block_inplace(xs);

  for (std::size_t c = 0; c < ncols; ++c) {
    std::vector<double> xmean(static_cast<std::size_t>(num_components_), 0.0);
    std::vector<int> count(static_cast<std::size_t>(num_components_), 0);
    for (int v = 0; v < n_; ++v) {
      xmean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])] +=
          xs[c][static_cast<std::size_t>(v)];
      ++count[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
    }
    for (int cc = 0; cc < num_components_; ++cc) {
      xmean[static_cast<std::size_t>(cc)] /=
          static_cast<double>(count[static_cast<std::size_t>(cc)]);
    }
    for (int v = 0; v < n_; ++v) {
      xs[c][static_cast<std::size_t>(v)] -=
          xmean[static_cast<std::size_t>(comp_[static_cast<std::size_t>(v)])];
    }
  }
  return xs;
}

}  // namespace lapclique::linalg

#include "linalg/csr.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/pool.hpp"

namespace lapclique::linalg {

namespace {
/// Rows per shard for row-parallel kernels.  Each row's inner loop runs
/// sequentially in column order, so sharding rows is bit-identical to the
/// sequential kernel; the grain only has to amortize dispatch.
constexpr std::int64_t kRowGrain = 512;
}  // namespace

CsrMatrix CsrMatrix::from_triplets(int n, std::span<const Triplet> triplets) {
  if (n < 0) throw std::invalid_argument("CsrMatrix: negative size");
  std::vector<Triplet> t(triplets.begin(), triplets.end());
  for (const Triplet& x : t) {
    if (x.row < 0 || x.row >= n || x.col < 0 || x.col >= n) {
      throw std::out_of_range("CsrMatrix: triplet index out of range");
    }
  }
  std::sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CsrMatrix m;
  m.n_ = n;
  m.rowptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t i = 0;
  for (int r = 0; r < n; ++r) {
    m.rowptr_[static_cast<std::size_t>(r)] = static_cast<int>(m.colidx_.size());
    while (i < t.size() && t[i].row == r) {
      const int c = t[i].col;
      double v = 0;
      while (i < t.size() && t[i].row == r && t[i].col == c) v += t[i++].value;
      if (v != 0.0) {
        m.colidx_.push_back(c);
        m.vals_.push_back(v);
      }
    }
  }
  m.rowptr_[static_cast<std::size_t>(n)] = static_cast<int>(m.colidx_.size());
  return m;
}

Vec CsrMatrix::multiply(std::span<const double> x) const {
  Vec y(static_cast<std::size_t>(n_), 0.0);
  multiply_into(x, y);
  return y;
}

void CsrMatrix::multiply_into(std::span<const double> x, std::span<double> y) const {
  if (static_cast<int>(x.size()) != n_ || static_cast<int>(y.size()) != n_) {
    throw std::invalid_argument("CsrMatrix::multiply: size mismatch");
  }
  exec::parallel_for(n_, kRowGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      double s = 0;
      for (int k = rowptr_[static_cast<std::size_t>(r)];
           k < rowptr_[static_cast<std::size_t>(r) + 1]; ++k) {
        s += vals_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(colidx_[static_cast<std::size_t>(k)])];
      }
      y[static_cast<std::size_t>(r)] = s;
    }
  });
}

std::vector<Vec> CsrMatrix::multiply_block(std::span<const Vec> x) const {
  std::vector<Vec> y(x.size(), Vec(static_cast<std::size_t>(n_), 0.0));
  multiply_block_into(x, y);
  return y;
}

void CsrMatrix::multiply_block_into(std::span<const Vec> x, std::span<Vec> y) const {
  const std::size_t k = x.size();
  if (y.size() != k) {
    throw std::invalid_argument("CsrMatrix::multiply_block: column count mismatch");
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (static_cast<int>(x[c].size()) != n_ || static_cast<int>(y[c].size()) != n_) {
      throw std::invalid_argument("CsrMatrix::multiply_block: size mismatch");
    }
  }
  if (k == 0) return;
  exec::parallel_for(n_, kRowGrain, [&](std::int64_t lo, std::int64_t hi) {
    // Per row, every nonzero is read once and applied to all k columns;
    // each column's accumulator sees the row's entries in ascending column
    // order, exactly as multiply_into's scalar loop does.
    std::vector<double> acc(k);
    for (std::int64_t r = lo; r < hi; ++r) {
      std::fill(acc.begin(), acc.end(), 0.0);
      for (int e = rowptr_[static_cast<std::size_t>(r)];
           e < rowptr_[static_cast<std::size_t>(r) + 1]; ++e) {
        const double v = vals_[static_cast<std::size_t>(e)];
        const auto col = static_cast<std::size_t>(colidx_[static_cast<std::size_t>(e)]);
        for (std::size_t c = 0; c < k; ++c) acc[c] += v * x[c][col];
      }
      for (std::size_t c = 0; c < k; ++c) y[c][static_cast<std::size_t>(r)] = acc[c];
    }
  });
}

double CsrMatrix::quadratic_form(std::span<const double> x) const {
  if (static_cast<int>(x.size()) != n_) {
    throw std::invalid_argument("CsrMatrix::quadratic_form: size mismatch");
  }
  double s = 0;
  for (int r = 0; r < n_; ++r) {
    for (int k = rowptr_[static_cast<std::size_t>(r)];
         k < rowptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      s += x[static_cast<std::size_t>(r)] * vals_[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(colidx_[static_cast<std::size_t>(k)])];
    }
  }
  return s;
}

double CsrMatrix::at(int r, int c) const {
  if (r < 0 || r >= n_ || c < 0 || c >= n_) {
    throw std::out_of_range("CsrMatrix::at: index out of range");
  }
  const auto begin = colidx_.begin() + rowptr_[static_cast<std::size_t>(r)];
  const auto end = colidx_.begin() + rowptr_[static_cast<std::size_t>(r) + 1];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return vals_[static_cast<std::size_t>(it - colidx_.begin())];
}

std::vector<double> CsrMatrix::to_dense() const {
  std::vector<double> d(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), 0.0);
  exec::parallel_for(n_, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      for (int k = rowptr_[static_cast<std::size_t>(r)];
           k < rowptr_[static_cast<std::size_t>(r) + 1]; ++k) {
        d[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(colidx_[static_cast<std::size_t>(k)])] =
            vals_[static_cast<std::size_t>(k)];
      }
    }
  });
  return d;
}

CsrMatrix CsrMatrix::plus(const CsrMatrix& other) const {
  if (other.n_ != n_) throw std::invalid_argument("CsrMatrix::plus: size mismatch");
  std::vector<Triplet> t;
  t.reserve(vals_.size() + other.vals_.size());
  auto collect = [&t](const CsrMatrix& m, double coef) {
    for (int r = 0; r < m.n_; ++r) {
      for (int k = m.rowptr_[static_cast<std::size_t>(r)];
           k < m.rowptr_[static_cast<std::size_t>(r) + 1]; ++k) {
        t.push_back(Triplet{r, m.colidx_[static_cast<std::size_t>(k)],
                            coef * m.vals_[static_cast<std::size_t>(k)]});
      }
    }
  };
  collect(*this, 1.0);
  collect(other, 1.0);
  return from_triplets(n_, t);
}

CsrMatrix CsrMatrix::scaled(double alpha) const {
  CsrMatrix m = *this;
  for (double& v : m.vals_) v *= alpha;
  return m;
}

}  // namespace lapclique::linalg

#include "linalg/csr.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/pool.hpp"

namespace lapclique::linalg {

namespace {
/// Rows per shard for row-parallel kernels.  Each row's inner loop runs
/// sequentially in column order, so sharding rows is bit-identical to the
/// sequential kernel; the grain only has to amortize dispatch.
constexpr std::int64_t kRowGrain = 512;
/// Slices per shard for the SELL kernels — kRowGrain rows' worth of slices,
/// keeping the shard geometry (a pure function of n) aligned with the old
/// row-sharded kernels.
constexpr std::int64_t kSliceGrain = kRowGrain / CsrMatrix::kSellSlice;
}  // namespace

CsrMatrix CsrMatrix::from_triplets(int n, std::span<const Triplet> triplets) {
  if (n < 0) throw std::invalid_argument("CsrMatrix: negative size");
  std::vector<Triplet> t(triplets.begin(), triplets.end());
  for (const Triplet& x : t) {
    if (x.row < 0 || x.row >= n || x.col < 0 || x.col >= n) {
      throw std::out_of_range("CsrMatrix: triplet index out of range");
    }
  }
  std::sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CsrMatrix m;
  m.n_ = n;
  m.rowptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t i = 0;
  for (int r = 0; r < n; ++r) {
    m.rowptr_[static_cast<std::size_t>(r)] = static_cast<int>(m.colidx_.size());
    while (i < t.size() && t[i].row == r) {
      const int c = t[i].col;
      double v = 0;
      while (i < t.size() && t[i].row == r && t[i].col == c) v += t[i++].value;
      if (v != 0.0) {
        m.colidx_.push_back(c);
        m.vals_.push_back(v);
      }
    }
  }
  m.rowptr_[static_cast<std::size_t>(n)] = static_cast<int>(m.colidx_.size());
  m.build_sell();
  return m;
}

void CsrMatrix::build_sell() {
  constexpr int C = kSellSlice;
  const std::int64_t slices = (static_cast<std::int64_t>(n_) + C - 1) / C;
  sell_ptr_.assign(static_cast<std::size_t>(slices) + 1, 0);
  for (std::int64_t s = 0; s < slices; ++s) {
    int width = 0;
    const int r0 = static_cast<int>(s) * C;
    const int r1 = std::min(n_, r0 + C);
    for (int r = r0; r < r1; ++r) {
      width = std::max(width, rowptr_[static_cast<std::size_t>(r) + 1] -
                                  rowptr_[static_cast<std::size_t>(r)]);
    }
    sell_ptr_[static_cast<std::size_t>(s) + 1] =
        sell_ptr_[static_cast<std::size_t>(s)] + static_cast<std::int64_t>(width) * C;
  }
  const auto total = static_cast<std::size_t>(sell_ptr_[static_cast<std::size_t>(slices)]);
  sell_cols_.assign(total, 0);
  sell_vals_.assign(total, 0.0);
  for (std::int64_t s = 0; s < slices; ++s) {
    const int r0 = static_cast<int>(s) * C;
    const int r1 = std::min(n_, r0 + C);
    const std::int64_t base = sell_ptr_[static_cast<std::size_t>(s)];
    for (int r = r0; r < r1; ++r) {
      const int lane = r - r0;
      const int kb = rowptr_[static_cast<std::size_t>(r)];
      const int ke = rowptr_[static_cast<std::size_t>(r) + 1];
      for (int k = kb; k < ke; ++k) {
        const auto slot =
            static_cast<std::size_t>(base + static_cast<std::int64_t>(k - kb) * C + lane);
        sell_cols_[slot] = colidx_[static_cast<std::size_t>(k)];
        sell_vals_[slot] = vals_[static_cast<std::size_t>(k)];
      }
    }
  }
}

Vec CsrMatrix::multiply(std::span<const double> x) const {
  Vec y(static_cast<std::size_t>(n_), 0.0);
  multiply_into(x, y);
  return y;
}

void CsrMatrix::multiply_into(std::span<const double> x, std::span<double> y) const {
  if (static_cast<int>(x.size()) != n_ || static_cast<int>(y.size()) != n_) {
    throw std::invalid_argument("CsrMatrix::multiply: size mismatch");
  }
  // SELL kernel: lanes of a slice advance in lockstep over entry index j;
  // lane l's accumulator sees row (slice*C+l)'s entries in ascending column
  // order — the exact per-row sequence of the scalar CSR loop, so the result
  // is bit-identical at every thread count.  Short lanes are guarded by
  // len[l]; padded slots never reach the arithmetic.
  constexpr int C = kSellSlice;
  const std::int64_t slices = (static_cast<std::int64_t>(n_) + C - 1) / C;
  exec::parallel_for(slices, kSliceGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t s = lo; s < hi; ++s) {
      const int r0 = static_cast<int>(s) * C;
      const int lanes = std::min(C, n_ - r0);
      const std::int64_t base = sell_ptr_[static_cast<std::size_t>(s)];
      const std::int64_t width = (sell_ptr_[static_cast<std::size_t>(s) + 1] - base) / C;
      double acc[C] = {};
      int len[C] = {};
      for (int l = 0; l < lanes; ++l) {
        len[l] = rowptr_[static_cast<std::size_t>(r0 + l) + 1] -
                 rowptr_[static_cast<std::size_t>(r0 + l)];
      }
      for (std::int64_t j = 0; j < width; ++j) {
        const auto slot = static_cast<std::size_t>(base + j * C);
        for (int l = 0; l < lanes; ++l) {
          if (j < len[l]) {
            acc[l] += sell_vals_[slot + static_cast<std::size_t>(l)] *
                      x[static_cast<std::size_t>(
                          sell_cols_[slot + static_cast<std::size_t>(l)])];
          }
        }
      }
      for (int l = 0; l < lanes; ++l) y[static_cast<std::size_t>(r0 + l)] = acc[l];
    }
  });
}

void CsrMatrix::multiply_axpy_into(double coef, std::span<const double> x,
                                   std::span<double> y) const {
  if (static_cast<int>(x.size()) != n_ || static_cast<int>(y.size()) != n_) {
    throw std::invalid_argument("CsrMatrix::multiply_axpy: size mismatch");
  }
  // multiply_into's SELL walk with a fused epilogue: the row product s lands
  // as y[r] += coef*s, the same multiply-add the separate axpy pass performs
  // on the stored ap[r] — so fusing cannot change a single bit.
  constexpr int C = kSellSlice;
  const std::int64_t slices = (static_cast<std::int64_t>(n_) + C - 1) / C;
  exec::parallel_for(slices, kSliceGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t s = lo; s < hi; ++s) {
      const int r0 = static_cast<int>(s) * C;
      const int lanes = std::min(C, n_ - r0);
      const std::int64_t base = sell_ptr_[static_cast<std::size_t>(s)];
      const std::int64_t width = (sell_ptr_[static_cast<std::size_t>(s) + 1] - base) / C;
      double acc[C] = {};
      int len[C] = {};
      for (int l = 0; l < lanes; ++l) {
        len[l] = rowptr_[static_cast<std::size_t>(r0 + l) + 1] -
                 rowptr_[static_cast<std::size_t>(r0 + l)];
      }
      for (std::int64_t j = 0; j < width; ++j) {
        const auto slot = static_cast<std::size_t>(base + j * C);
        for (int l = 0; l < lanes; ++l) {
          if (j < len[l]) {
            acc[l] += sell_vals_[slot + static_cast<std::size_t>(l)] *
                      x[static_cast<std::size_t>(
                          sell_cols_[slot + static_cast<std::size_t>(l)])];
          }
        }
      }
      for (int l = 0; l < lanes; ++l) {
        y[static_cast<std::size_t>(r0 + l)] += coef * acc[l];
      }
    }
  });
}

std::vector<Vec> CsrMatrix::multiply_block(std::span<const Vec> x) const {
  std::vector<Vec> y(x.size(), Vec(static_cast<std::size_t>(n_), 0.0));
  multiply_block_into(x, y);
  return y;
}

void CsrMatrix::multiply_block_into(std::span<const Vec> x, std::span<Vec> y) const {
  const std::size_t k = x.size();
  if (y.size() != k) {
    throw std::invalid_argument("CsrMatrix::multiply_block: column count mismatch");
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (static_cast<int>(x[c].size()) != n_ || static_cast<int>(y[c].size()) != n_) {
      throw std::invalid_argument("CsrMatrix::multiply_block: size mismatch");
    }
  }
  if (k == 0) return;
  // SELL kernel over RHS columns: per slice, every nonzero is read once and
  // applied to all k columns; lane l's accumulators see row (slice*C+l)'s
  // entries in ascending column order, exactly as multiply_into does — so
  // column c of the block product is bit-identical to multiply(x[c]).
  constexpr int C = kSellSlice;
  const std::int64_t slices = (static_cast<std::int64_t>(n_) + C - 1) / C;
  exec::parallel_for(slices, kSliceGrain, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<double> acc(static_cast<std::size_t>(C) * k);
    for (std::int64_t s = lo; s < hi; ++s) {
      const int r0 = static_cast<int>(s) * C;
      const int lanes = std::min(C, n_ - r0);
      const std::int64_t base = sell_ptr_[static_cast<std::size_t>(s)];
      const std::int64_t width = (sell_ptr_[static_cast<std::size_t>(s) + 1] - base) / C;
      std::fill(acc.begin(), acc.end(), 0.0);
      int len[C] = {};
      for (int l = 0; l < lanes; ++l) {
        len[l] = rowptr_[static_cast<std::size_t>(r0 + l) + 1] -
                 rowptr_[static_cast<std::size_t>(r0 + l)];
      }
      for (std::int64_t j = 0; j < width; ++j) {
        const auto slot = static_cast<std::size_t>(base + j * C);
        for (int l = 0; l < lanes; ++l) {
          if (j >= len[l]) continue;
          const double v = sell_vals_[slot + static_cast<std::size_t>(l)];
          const auto col = static_cast<std::size_t>(
              sell_cols_[slot + static_cast<std::size_t>(l)]);
          double* a = acc.data() + static_cast<std::size_t>(l) * k;
          for (std::size_t c = 0; c < k; ++c) a[c] += v * x[c][col];
        }
      }
      for (int l = 0; l < lanes; ++l) {
        const double* a = acc.data() + static_cast<std::size_t>(l) * k;
        for (std::size_t c = 0; c < k; ++c) y[c][static_cast<std::size_t>(r0 + l)] = a[c];
      }
    }
  });
}

void CsrMatrix::multiply_block_axpy_into(double coef, std::span<const Vec> x,
                                         std::span<Vec> y) const {
  const std::size_t k = x.size();
  if (y.size() != k) {
    throw std::invalid_argument("CsrMatrix::multiply_block_axpy: column count mismatch");
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (static_cast<int>(x[c].size()) != n_ || static_cast<int>(y[c].size()) != n_) {
      throw std::invalid_argument("CsrMatrix::multiply_block_axpy: size mismatch");
    }
  }
  if (k == 0) return;
  // multiply_block_into's SELL walk with the fused y[c][r] += coef*s
  // epilogue — see multiply_axpy_into for the bit-identity argument.
  constexpr int C = kSellSlice;
  const std::int64_t slices = (static_cast<std::int64_t>(n_) + C - 1) / C;
  exec::parallel_for(slices, kSliceGrain, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<double> acc(static_cast<std::size_t>(C) * k);
    for (std::int64_t s = lo; s < hi; ++s) {
      const int r0 = static_cast<int>(s) * C;
      const int lanes = std::min(C, n_ - r0);
      const std::int64_t base = sell_ptr_[static_cast<std::size_t>(s)];
      const std::int64_t width = (sell_ptr_[static_cast<std::size_t>(s) + 1] - base) / C;
      std::fill(acc.begin(), acc.end(), 0.0);
      int len[C] = {};
      for (int l = 0; l < lanes; ++l) {
        len[l] = rowptr_[static_cast<std::size_t>(r0 + l) + 1] -
                 rowptr_[static_cast<std::size_t>(r0 + l)];
      }
      for (std::int64_t j = 0; j < width; ++j) {
        const auto slot = static_cast<std::size_t>(base + j * C);
        for (int l = 0; l < lanes; ++l) {
          if (j >= len[l]) continue;
          const double v = sell_vals_[slot + static_cast<std::size_t>(l)];
          const auto col = static_cast<std::size_t>(
              sell_cols_[slot + static_cast<std::size_t>(l)]);
          double* a = acc.data() + static_cast<std::size_t>(l) * k;
          for (std::size_t c = 0; c < k; ++c) a[c] += v * x[c][col];
        }
      }
      for (int l = 0; l < lanes; ++l) {
        const double* a = acc.data() + static_cast<std::size_t>(l) * k;
        for (std::size_t c = 0; c < k; ++c) {
          y[c][static_cast<std::size_t>(r0 + l)] += coef * a[c];
        }
      }
    }
  });
}

double CsrMatrix::quadratic_form(std::span<const double> x) const {
  if (static_cast<int>(x.size()) != n_) {
    throw std::invalid_argument("CsrMatrix::quadratic_form: size mismatch");
  }
  double s = 0;
  for (int r = 0; r < n_; ++r) {
    for (int k = rowptr_[static_cast<std::size_t>(r)];
         k < rowptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      s += x[static_cast<std::size_t>(r)] * vals_[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(colidx_[static_cast<std::size_t>(k)])];
    }
  }
  return s;
}

double CsrMatrix::at(int r, int c) const {
  if (r < 0 || r >= n_ || c < 0 || c >= n_) {
    throw std::out_of_range("CsrMatrix::at: index out of range");
  }
  const auto begin = colidx_.begin() + rowptr_[static_cast<std::size_t>(r)];
  const auto end = colidx_.begin() + rowptr_[static_cast<std::size_t>(r) + 1];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return vals_[static_cast<std::size_t>(it - colidx_.begin())];
}

std::vector<double> CsrMatrix::to_dense() const {
  std::vector<double> d(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), 0.0);
  exec::parallel_for(n_, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      for (int k = rowptr_[static_cast<std::size_t>(r)];
           k < rowptr_[static_cast<std::size_t>(r) + 1]; ++k) {
        d[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(colidx_[static_cast<std::size_t>(k)])] =
            vals_[static_cast<std::size_t>(k)];
      }
    }
  });
  return d;
}

CsrMatrix CsrMatrix::plus(const CsrMatrix& other) const {
  if (other.n_ != n_) throw std::invalid_argument("CsrMatrix::plus: size mismatch");
  std::vector<Triplet> t;
  t.reserve(vals_.size() + other.vals_.size());
  auto collect = [&t](const CsrMatrix& m, double coef) {
    for (int r = 0; r < m.n_; ++r) {
      for (int k = m.rowptr_[static_cast<std::size_t>(r)];
           k < m.rowptr_[static_cast<std::size_t>(r) + 1]; ++k) {
        t.push_back(Triplet{r, m.colidx_[static_cast<std::size_t>(k)],
                            coef * m.vals_[static_cast<std::size_t>(k)]});
      }
    }
  };
  collect(*this, 1.0);
  collect(other, 1.0);
  return from_triplets(n_, t);
}

CsrMatrix CsrMatrix::scaled(double alpha) const {
  CsrMatrix m = *this;
  for (double& v : m.vals_) v *= alpha;
  // The sliced layout mirrors vals_ — scale it in place rather than
  // rebuilding (padding slots stay 0*alpha = ±0, never read anyway).
  for (double& v : m.sell_vals_) v *= alpha;
  return m;
}

}  // namespace lapclique::linalg

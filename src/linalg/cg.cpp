#include "linalg/cg.hpp"

#include <cmath>

namespace lapclique::linalg {

CgResult conjugate_gradient(const std::function<Vec(std::span<const double>)>& apply_a,
                            int n, std::span<const double> b, double tol,
                            int max_iters, bool project_kernel) {
  Vec rhs(b.begin(), b.end());
  if (project_kernel) project_out_ones(rhs);

  CgResult res;
  res.x.assign(static_cast<std::size_t>(n), 0.0);
  Vec r = rhs;
  Vec p = r;
  double rr = dot(r, r);
  const double b_norm = std::max(norm2(rhs), 1e-300);

  for (int k = 0; k < max_iters; ++k) {
    if (std::sqrt(rr) <= tol * b_norm) {
      res.converged = true;
      break;
    }
    Vec ap = apply_a(p);
    if (project_kernel) project_out_ones(ap);
    const double pap = dot(p, ap);
    if (!(pap > 0)) break;  // hit the kernel or lost positive-definiteness
    const double alpha = rr / pap;
    axpy(alpha, p, res.x);
    axpy(-alpha, ap, r);
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
    ++res.iterations;
  }
  res.residual_norm = std::sqrt(rr);
  if (res.residual_norm <= tol * b_norm) res.converged = true;
  if (project_kernel) project_out_ones(res.x);
  return res;
}

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b, double tol,
                            int max_iters, bool project_kernel) {
  return conjugate_gradient(
      [&a](std::span<const double> x) { return a.multiply(x); }, a.size(), b, tol,
      max_iters, project_kernel);
}

}  // namespace lapclique::linalg

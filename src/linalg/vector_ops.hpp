// Dense vector operations on std::vector<double>.
#pragma once

#include <span>
#include <vector>

namespace lapclique::linalg {

using Vec = std::vector<double>;

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
[[nodiscard]] double norm2(std::span<const double> a);
[[nodiscard]] double norm_inf(std::span<const double> a);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void scale(double alpha, std::span<double> x);

[[nodiscard]] Vec add(std::span<const double> a, std::span<const double> b);
[[nodiscard]] Vec sub(std::span<const double> a, std::span<const double> b);
[[nodiscard]] Vec scaled(double alpha, std::span<const double> x);

/// Subtract the mean so the vector sums to zero (projection onto the
/// complement of the all-ones kernel of a connected Laplacian).
void project_out_ones(std::span<double> x);

/// Sum of entries.
[[nodiscard]] double sum(std::span<const double> x);

}  // namespace lapclique::linalg

// Cyclic Jacobi eigenvalue decomposition for dense symmetric matrices.
//
// Used by tests and by the sparsifier quality certification: exact spectra of
// small Laplacians, exact generalized condition numbers of (L_G, L_H) pairs,
// and exact lambda_2 values against which the deterministic power iteration
// is validated.
#pragma once

#include <span>
#include <vector>

#include "linalg/csr.hpp"

namespace lapclique::linalg {

struct EigenDecomposition {
  std::vector<double> values;   ///< ascending
  std::vector<double> vectors;  ///< column-major n*n; column k pairs values[k]
  int n = 0;

  [[nodiscard]] double vector_at(int row, int k) const {
    return vectors[static_cast<std::size_t>(k) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(row)];
  }
};

/// Dense symmetric eigendecomposition; `dense` is row-major n*n.
EigenDecomposition jacobi_eigen(int n, std::span<const double> dense,
                                double tol = 1e-12, int max_sweeps = 64);

/// Exact generalized condition number of the pencil (A, B) restricted to the
/// complement of their common kernel: returns max/min over nonzero
/// eigenvalues lambda of A x = lambda B x.  A and B must be symmetric PSD
/// with the same kernel (e.g. Laplacians of connected graphs on one vertex
/// set).  `kernel_tol` decides which eigenvalues count as zero.
double generalized_condition_number(const CsrMatrix& a, const CsrMatrix& b,
                                    double kernel_tol = 1e-9);

}  // namespace lapclique::linalg

// Compressed sparse row matrix (square, real), the workhorse format for
// Laplacians.  Built from triplets; duplicate entries are summed.
//
// Alongside the classic rowptr/colidx/vals arrays the matrix carries a
// SELL-like sliced layout (rows grouped in slices of kSellSlice, entries
// transposed within the slice so lane l, entry j sits at slice_base + j*C + l)
// that the matvec kernels stream for SIMD-friendly access.  Bit-identity with
// the scalar CSR kernels is preserved by construction: each row's entries are
// visited in the same ascending-column order, and short lanes are guarded by
// per-lane lengths — padding slots exist in storage but never enter the
// arithmetic (adding a padded +0.0 would flip a -0.0 accumulator).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace lapclique::linalg {

struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds an n x n matrix from triplets (duplicates summed, zeros dropped).
  static CsrMatrix from_triplets(int n, std::span<const Triplet> triplets);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] std::int64_t nnz() const { return static_cast<std::int64_t>(vals_.size()); }

  [[nodiscard]] Vec multiply(std::span<const double> x) const;
  void multiply_into(std::span<const double> x, std::span<double> y) const;

  /// Multi-RHS matvec: y[c] = A x[c] for every column c.  One pass over the
  /// matrix serves all columns (the batched-serving hot path), and each
  /// column's per-row accumulation runs in the same entry order as
  /// multiply(), so column c of the block product is bit-identical to
  /// multiply(x[c]) at every thread count.
  [[nodiscard]] std::vector<Vec> multiply_block(std::span<const Vec> x) const;
  void multiply_block_into(std::span<const Vec> x, std::span<Vec> y) const;

  /// Fused matvec-accumulate: y += coef * (A x), the epilogue of the fused
  /// Chebyshev triad (linalg/chebyshev).  Per row the product accumulates in
  /// the same entry order as multiply(), then lands as a single
  /// y[r] += coef*s — bitwise identical to the two-pass
  /// `ap = multiply(x); axpy(coef, ap, y)` it replaces.
  void multiply_axpy_into(double coef, std::span<const double> x,
                          std::span<double> y) const;

  /// Block twin of multiply_axpy_into: y[c] += coef * (A x[c]) for every
  /// column, one shared pass over the matrix.  Column c is bitwise the
  /// two-pass `ap = multiply_block(x); axpy(coef, ap[c], y[c])` sequence.
  void multiply_block_axpy_into(double coef, std::span<const Vec> x,
                                std::span<Vec> y) const;

  /// x^T A x
  [[nodiscard]] double quadratic_form(std::span<const double> x) const;

  [[nodiscard]] std::span<const int> row_ptr() const { return rowptr_; }
  [[nodiscard]] std::span<const int> col_idx() const { return colidx_; }
  [[nodiscard]] std::span<const double> values() const { return vals_; }

  /// Entry lookup (binary search within the row); 0 if absent.
  [[nodiscard]] double at(int r, int c) const;

  /// Dense copy (row-major), for small-n tests and dense factorizations.
  [[nodiscard]] std::vector<double> to_dense() const;

  /// A + B (same size).
  [[nodiscard]] CsrMatrix plus(const CsrMatrix& other) const;
  /// alpha * A
  [[nodiscard]] CsrMatrix scaled(double alpha) const;

  /// Rows per SELL slice.  A pure constant: slice boundaries are part of the
  /// storage layout, never a tuning knob that could vary between runs.
  static constexpr int kSellSlice = 8;

 private:
  /// (Re)derives the sliced layout from rowptr_/colidx_/vals_.
  void build_sell();

  int n_ = 0;
  std::vector<int> rowptr_;
  std::vector<int> colidx_;
  std::vector<double> vals_;
  // SELL-like sliced storage: slice s covers rows [s*C, s*C+C) and owns
  // sell_ptr_[s+1]-sell_ptr_[s] = width*C slots; row r's j-th entry lives at
  // sell_ptr_[s] + j*C + (r - s*C).  Short rows leave trailing slots as
  // (col=0, val=0) padding that the kernels never read.
  std::vector<std::int64_t> sell_ptr_;
  std::vector<int> sell_cols_;
  std::vector<double> sell_vals_;
};

}  // namespace lapclique::linalg

// Compressed sparse row matrix (square, real), the workhorse format for
// Laplacians.  Built from triplets; duplicate entries are summed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace lapclique::linalg {

struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds an n x n matrix from triplets (duplicates summed, zeros dropped).
  static CsrMatrix from_triplets(int n, std::span<const Triplet> triplets);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] std::int64_t nnz() const { return static_cast<std::int64_t>(vals_.size()); }

  [[nodiscard]] Vec multiply(std::span<const double> x) const;
  void multiply_into(std::span<const double> x, std::span<double> y) const;

  /// Multi-RHS matvec: y[c] = A x[c] for every column c.  One pass over the
  /// matrix serves all columns (the batched-serving hot path), and each
  /// column's per-row accumulation runs in the same entry order as
  /// multiply(), so column c of the block product is bit-identical to
  /// multiply(x[c]) at every thread count.
  [[nodiscard]] std::vector<Vec> multiply_block(std::span<const Vec> x) const;
  void multiply_block_into(std::span<const Vec> x, std::span<Vec> y) const;

  /// x^T A x
  [[nodiscard]] double quadratic_form(std::span<const double> x) const;

  [[nodiscard]] std::span<const int> row_ptr() const { return rowptr_; }
  [[nodiscard]] std::span<const int> col_idx() const { return colidx_; }
  [[nodiscard]] std::span<const double> values() const { return vals_; }

  /// Entry lookup (binary search within the row); 0 if absent.
  [[nodiscard]] double at(int r, int c) const;

  /// Dense copy (row-major), for small-n tests and dense factorizations.
  [[nodiscard]] std::vector<double> to_dense() const;

  /// A + B (same size).
  [[nodiscard]] CsrMatrix plus(const CsrMatrix& other) const;
  /// alpha * A
  [[nodiscard]] CsrMatrix scaled(double alpha) const;

 private:
  int n_ = 0;
  std::vector<int> rowptr_;
  std::vector<int> colidx_;
  std::vector<double> vals_;
};

}  // namespace lapclique::linalg

// Conjugate gradient reference solver, used as a numeric ground truth for
// the Chebyshev-based solvers and as the electrical-flow fallback in tests.
#pragma once

#include <functional>
#include <span>

#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"

namespace lapclique::linalg {

struct CgResult {
  Vec x;
  int iterations = 0;
  double residual_norm = 0;
  bool converged = false;
};

/// Solves A x = b for symmetric PSD A (Laplacians included: right-hand sides
/// are projected out of the all-ones kernel first when `project_kernel`).
CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            double tol = 1e-10, int max_iters = 10000,
                            bool project_kernel = true);

/// Operator form, for matrices applied implicitly.
CgResult conjugate_gradient(
    const std::function<Vec(std::span<const double>)>& apply_a, int n,
    std::span<const double> b, double tol = 1e-10, int max_iters = 10000,
    bool project_kernel = true);

}  // namespace lapclique::linalg

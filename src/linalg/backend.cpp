#include "linalg/backend.hpp"

#include <cstdlib>

namespace lapclique::linalg {

namespace {

/// kAuto thresholds.  Pure constants: the resolution must be a deterministic
/// function of (n, nnz) so reruns, threads, and routing modes all see the
/// same factorization.  Below kSparseMinN the dense factor wins outright
/// (and the golden instances at n <= 256 stay on the historical dense bits);
/// above it, sparse takes over unless the matrix is dense enough
/// (nnz > n^2/kSparseDensityDivisor) that fill-in would eat the win.
constexpr int kSparseMinN = 512;
constexpr std::int64_t kSparseDensityDivisor = 16;

}  // namespace

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kAuto:
      return "auto";
    case Backend::kDense:
      return "dense";
    case Backend::kSparse:
      return "sparse";
  }
  return "auto";
}

std::optional<Backend> backend_from_string(std::string_view s) {
  if (s == "auto") return Backend::kAuto;
  if (s == "dense") return Backend::kDense;
  if (s == "sparse") return Backend::kSparse;
  return std::nullopt;
}

Backend default_backend() {
  static const Backend env_default = [] {
    const char* e = std::getenv("LAPCLIQUE_NUMERICS");
    if (e == nullptr) return Backend::kAuto;
    return backend_from_string(e).value_or(Backend::kAuto);
  }();
  return env_default;
}

Backend resolve_backend(Backend requested, int n, std::int64_t nnz) {
  if (requested != Backend::kAuto) return requested;
  if (n < kSparseMinN) return Backend::kDense;
  const std::int64_t cells = static_cast<std::int64_t>(n) * n;
  return nnz * kSparseDensityDivisor <= cells ? Backend::kSparse : Backend::kDense;
}

BackendLaplacianFactor BackendLaplacianFactor::factor(const CsrMatrix& laplacian,
                                                      Backend requested) {
  BackendLaplacianFactor f;
  f.n_ = laplacian.size();
  f.stats_.requested = requested;
  f.stats_.chosen = resolve_backend(requested, laplacian.size(), laplacian.nnz());
  f.stats_.n = laplacian.size();
  f.stats_.nnz = laplacian.nnz();
  if (f.stats_.chosen == Backend::kSparse) {
    f.sparse_ = SparseLaplacianFactor::factor(laplacian);
    f.stats_.fill_nnz = f.sparse_.fill_nnz();
  } else {
    f.dense_ = LaplacianFactor::factor(laplacian);
    // The dense factor stores the full triangle; report its logical fill.
    const std::int64_t n = laplacian.size();
    f.stats_.fill_nnz = n * (n + 1) / 2;
  }
  return f;
}

Vec BackendLaplacianFactor::solve(std::span<const double> b) const {
  return stats_.chosen == Backend::kSparse ? sparse_.solve(b) : dense_.solve(b);
}

std::vector<Vec> BackendLaplacianFactor::solve_block(std::span<const Vec> b) const {
  return stats_.chosen == Backend::kSparse ? sparse_.solve_block(b)
                                           : dense_.solve_block(b);
}

}  // namespace lapclique::linalg

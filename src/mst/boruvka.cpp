#include "mst/boruvka.hpp"

#include <algorithm>
#include <numeric>

namespace lapclique::mst {

using graph::Graph;

namespace {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<std::size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

/// Lexicographic better-edge rule: smaller weight, then smaller edge id.
bool better(const Graph& g, int a, int b) {
  if (b < 0) return true;
  if (a < 0) return false;
  if (g.edge(a).w != g.edge(b).w) return g.edge(a).w < g.edge(b).w;
  return a < b;
}

}  // namespace

MstResult boruvka_clique(const Graph& g, clique::Network& net) {
  net.set_phase("mst/boruvka");
  const std::int64_t before = net.rounds();
  const std::int64_t words_before = net.words_sent();
  const int n = g.num_vertices();
  MstResult out;
  UnionFind uf(n);
  int components = n;

  for (int phase = 0; phase < 2 * n + 2 && components > 1; ++phase) {
    // Each node scans its incident edges for the best edge leaving its
    // component (internal) and broadcasts it (3 words -> 3 rounds).
    std::vector<int> candidate(static_cast<std::size_t>(n), -1);
    bool any = false;
    for (int v = 0; v < n; ++v) {
      for (const graph::Incidence& inc : g.incident(v)) {
        if (uf.find(v) == uf.find(inc.other)) continue;
        if (better(g, inc.edge, candidate[static_cast<std::size_t>(v)])) {
          candidate[static_cast<std::size_t>(v)] = inc.edge;
          any = true;
        }
      }
    }
    if (!any) break;  // remaining components are mutually disconnected
    net.charge_all_to_all(3);
    ++out.phases;

    // All nodes now know all candidates; merge internally, taking the best
    // candidate per component.
    std::vector<int> best_of_comp(static_cast<std::size_t>(n), -1);
    for (int v = 0; v < n; ++v) {
      const int e = candidate[static_cast<std::size_t>(v)];
      if (e < 0) continue;
      const int c = uf.find(v);
      if (better(g, e, best_of_comp[static_cast<std::size_t>(c)])) {
        best_of_comp[static_cast<std::size_t>(c)] = e;
      }
    }
    for (int c = 0; c < n; ++c) {
      const int e = best_of_comp[static_cast<std::size_t>(c)];
      if (e < 0) continue;
      if (uf.unite(g.edge(e).u, g.edge(e).v)) {
        out.edges.push_back(e);
        out.total_weight += g.edge(e).w;
        --components;
      }
    }
  }
  std::sort(out.edges.begin(), out.edges.end());
  out.run.capture(net, before, words_before);
  return out;
}

MstResult kruskal(const Graph& g) {
  MstResult out;
  std::vector<int> order(static_cast<std::size_t>(g.num_edges()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](int a, int b) {
    if (g.edge(a).w != g.edge(b).w) return g.edge(a).w < g.edge(b).w;
    return a < b;
  });
  UnionFind uf(g.num_vertices());
  for (int e : order) {
    if (uf.unite(g.edge(e).u, g.edge(e).v)) {
      out.edges.push_back(e);
      out.total_weight += g.edge(e).w;
    }
  }
  std::sort(out.edges.begin(), out.edges.end());
  return out;
}

}  // namespace lapclique::mst

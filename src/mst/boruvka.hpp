// Minimum spanning forest in the congested clique.
//
// The congested clique model was introduced for exactly this problem
// ([LPSPP05], cited in §2.1).  We implement the Boruvka scheme with honest
// round accounting: each phase, every node broadcasts the minimum-weight
// edge leaving its current component (3 words: endpoints + weight), after
// which every node merges components internally; O(log n) phases.  (Lotker
// et al.'s O(log log n) merging is out of scope for this library; Boruvka is
// the standard practical baseline and uses only the collectives this
// repository provides.)
//
// Ties are broken by edge id, so the result is deterministic and unique.
#pragma once

#include <cstdint>
#include <vector>

#include "cliquesim/network.hpp"
#include "cliquesim/run_info.hpp"
#include "graph/graph.hpp"

namespace lapclique::mst {

struct MstResult {
  std::vector<int> edges;  ///< edge ids of the minimum spanning forest
  double total_weight = 0;
  int phases = 0;
  RunInfo run;  ///< empty for the sequential kruskal() oracle
};

/// Boruvka in the clique (works on disconnected graphs: returns a forest).
MstResult boruvka_clique(const graph::Graph& g, clique::Network& net);

/// Sequential oracle (Kruskal with the same tie-break).
MstResult kruskal(const graph::Graph& g);

}  // namespace lapclique::mst
